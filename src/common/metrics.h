// Process-wide metrics registry: lock-free counters, gauges, and
// fixed-bucket latency histograms, snapshot-exportable without stopping
// writers.
//
// Why this exists: before the fleet work (sharding, incremental
// streaming) can claim production scale, the server must be measurable.
// The hand-rolled `stats` counters answered "how many", but not "how
// slow" or "why" — this registry adds latency distributions (p50/p90/p99
// derivable from bucket counts) next to every admission/cache/quota
// decision, cheap enough to leave on in the hot path.
//
// Design constraints, in order:
//
//  * Hot-path writes are atomics only. Counter::Inc and Gauge::Add are a
//    single relaxed fetch_add; Histogram::Observe is one relaxed
//    fetch_add on a bucket plus one CAS loop on the running sum. No
//    mutex is ever taken by a writer after registration.
//  * Registration is rare and locked. GetCounter/GetGauge/GetHistogram
//    take the registry mutex, but call sites cache the returned
//    reference in a function-local static (see the *Metrics structs in
//    admission.cc / result_cache.cc), so the lock is hit once per
//    process, not once per event. References stay valid for the process
//    lifetime — metric objects are never destroyed or moved.
//  * Snapshots never stop writers. Snapshot() holds the registration
//    mutex only to walk the name table; the values it reads are relaxed
//    atomic loads, so a snapshot taken mid-write sees some prefix of the
//    in-flight updates (each individual metric is internally consistent;
//    cross-metric skew is documented and fine for monitoring).
//
// Naming convention: `subsystem.event` (dots), e.g. "admission.admitted"
// or "query.hot_ms". Histogram names end in `_ms`. Each name must be
// registered at exactly one source location (enforced by the
// duplicate-metric-name rule in tools/lint_invariants.py) so grep finds
// the single writer. The Prometheus renderer maps dots to underscores
// and prefixes `tsexplain_`.

#ifndef TSEXPLAIN_COMMON_METRICS_H_
#define TSEXPLAIN_COMMON_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/mutex.h"

namespace tsexplain {

/// Monotonic event count. Writes are one relaxed fetch_add.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

 private:
  friend class MetricRegistry;
  Counter() = default;
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  std::atomic<uint64_t> value_{0};
};

/// Instantaneous level (queue depth, bytes in use, high-water marks).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }

  /// Lock-free high-water mark: raises the gauge to `candidate` if it is
  /// above the current value, otherwise leaves it alone.
  void SetMax(int64_t candidate) {
    int64_t current = value_.load(std::memory_order_relaxed);
    while (candidate > current &&
           !value_.compare_exchange_weak(current, candidate,
                                         std::memory_order_relaxed)) {
    }
  }

  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

 private:
  friend class MetricRegistry;
  Gauge() = default;
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket latency histogram. Bucket i counts observations
/// `value <= bounds[i]` that missed every earlier bucket (Prometheus
/// `le` semantics, stored non-cumulative); one extra overflow bucket
/// catches everything above the last bound. Percentiles are derived
/// from bucket counts by linear interpolation inside the landing
/// bucket, so they are approximations bounded by bucket width — pick
/// bounds dense where precision matters.
class Histogram {
 public:
  void Observe(double value);

  /// Allocation-free reads for periodic samplers (metrics_history.h),
  /// which cannot afford Snapshot()'s per-scrape heap churn. All three
  /// are relaxed atomic loads per bucket: a read racing Observe sees
  /// some prefix of the in-flight updates, same contract as Snapshot().
  uint64_t TotalCount() const;
  double Sum() const;
  /// Same interpolation as HistogramSnapshot::Percentile, computed
  /// directly from the live buckets (two bucket walks, no allocation).
  double ApproxPercentile(double p) const;

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

 private:
  friend class MetricRegistry;
  explicit Histogram(std::vector<double> bounds);
  void Reset();

  std::vector<double> bounds_;  // ascending upper bounds, never empty
  // bounds_.size() + 1 slots; the last is the +Inf overflow bucket.
  std::vector<std::atomic<uint64_t>> counts_;
  std::atomic<uint64_t> sum_bits_{0};  // bit pattern of the double sum
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;     // upper bounds, ascending
  std::vector<uint64_t> counts;   // bounds.size() + 1; last is overflow
  uint64_t count = 0;             // total observations (= sum of counts)
  double sum = 0.0;

  /// Approximate quantile for p in [0, 1], linearly interpolated within
  /// the landing bucket. The overflow bucket reports its lower bound.
  double Percentile(double p) const;
};

/// Point-in-time export of every registered metric, sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Lookup helpers (nullptr when the name is not registered).
  const uint64_t* FindCounter(const std::string& name) const;
  const int64_t* FindGauge(const std::string& name) const;
  const HistogramSnapshot* FindHistogram(const std::string& name) const;
};

class MetricRegistry {
 public:
  /// The process-wide registry every production call site uses. Never
  /// destroyed (intentionally leaked) so metric writes from late-exiting
  /// threads — e.g. ThreadPool::Shared() workers draining during static
  /// teardown — can never touch a dead registry.
  static MetricRegistry& Global();

  /// Instantiable for tests that want an isolated namespace.
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Create-or-fetch by name. The returned reference is stable for the
  /// registry's lifetime. Registering a name that already exists as a
  /// different metric kind is a programming error (aborts).
  Counter& GetCounter(const std::string& name) TSE_EXCLUDES(mu_);
  Gauge& GetGauge(const std::string& name) TSE_EXCLUDES(mu_);
  /// Empty `bounds` selects DefaultLatencyBoundsMs(). When the name is
  /// already registered the existing histogram is returned and `bounds`
  /// is ignored — first registration wins.
  Histogram& GetHistogram(const std::string& name,
                          std::vector<double> bounds = {}) TSE_EXCLUDES(mu_);

  /// 1µs .. 30s in a ~2.5x geometric ladder — wide enough to straddle
  /// both cache hits (microseconds) and cold explains (seconds).
  static std::vector<double> DefaultLatencyBoundsMs();

  MetricsSnapshot Snapshot() const TSE_EXCLUDES(mu_);

  /// Total registered metrics (counters + gauges + histograms). Cheap —
  /// three map sizes under the registration mutex — so samplers can poll
  /// it every tick to detect late registrations without paying for a
  /// full Snapshot().
  size_t NumMetrics() const TSE_EXCLUDES(mu_);

  /// Zeroes every registered metric in place (references stay valid).
  /// Test-only: production counters are monotonic by contract.
  void ResetForTest() TSE_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      TSE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ TSE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      TSE_GUARDED_BY(mu_);
};

/// Compact JSON object:
///   {"counters":{name:value,...},
///    "gauges":{name:value,...},
///    "histograms":{name:{"count":N,"sum":S,"p50":..,"p90":..,"p99":..,
///                        "buckets":[{"le":bound,"count":n},...]},...}}
/// Bucket counts are non-cumulative (they sum to "count"); the final
/// bucket's "le" is the string "+Inf".
std::string RenderMetricsJson(const MetricsSnapshot& snapshot);

/// Prometheus text exposition format (version 0.0.4): `# TYPE` comments,
/// cumulative `_bucket{le="..."}` series plus `_sum`/`_count` per
/// histogram. Names are sanitized via PrometheusMetricName.
std::string RenderPrometheusText(const MetricsSnapshot& snapshot);

/// `tsexplain_` prefix + every character outside [a-zA-Z0-9_:] mapped to
/// '_' (so "query.hot_ms" becomes "tsexplain_query_hot_ms").
std::string PrometheusMetricName(const std::string& name);

/// Label-value escaping per the exposition format: backslash, double
/// quote, and newline become \\, \", and \n.
std::string PrometheusEscapeLabel(const std::string& value);

}  // namespace tsexplain

#endif  // TSEXPLAIN_COMMON_METRICS_H_
