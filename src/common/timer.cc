#include "src/common/timer.h"

// Header-only; this translation unit exists so the build file can list the
// module uniformly.
