#include "src/common/rng.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace tsexplain {
namespace {

constexpr double kPi = 3.14159265358979323846;

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  TSE_CHECK_LE(lo, hi);
  return lo + (hi - lo) * NextDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  TSE_CHECK_LE(lo, hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  uint64_t draw;
  do {
    draw = NextUint64();
  } while (draw >= limit);
  return lo + static_cast<int64_t>(draw % span);
}

double Rng::NextGaussian() {
  // Box-Muller; u1 kept away from 0 for a finite log.
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * kPi * u2);
}

double Rng::Gaussian(double mean, double stddev) {
  return mean + stddev * NextGaussian();
}

bool Rng::NextBool(double p) {
  return NextDouble() < p;
}

int64_t Rng::Poisson(double lambda) {
  TSE_CHECK_GE(lambda, 0.0);
  if (lambda == 0.0) return 0;
  if (lambda > 64.0) {
    const double draw = Gaussian(lambda, std::sqrt(lambda));
    return draw < 0.0 ? 0 : static_cast<int64_t>(draw + 0.5);
  }
  const double limit = std::exp(-lambda);
  int64_t count = 0;
  double product = NextDouble();
  while (product > limit) {
    ++count;
    product *= NextDouble();
  }
  return count;
}

std::vector<int> Rng::SampleDistinctSorted(int lo, int hi, int k) {
  TSE_CHECK_GE(k, 0);
  TSE_CHECK_LE(static_cast<int64_t>(k), static_cast<int64_t>(hi) - lo + 1);
  // Floyd's algorithm: k distinct values without building the full range.
  std::vector<int> picked;
  picked.reserve(static_cast<size_t>(k));
  for (int j = hi - k + 1; j <= hi; ++j) {
    const int t = static_cast<int>(UniformInt(lo, j));
    bool seen = false;
    for (int value : picked) {
      if (value == t) {
        seen = true;
        break;
      }
    }
    picked.push_back(seen ? j : t);
  }
  std::sort(picked.begin(), picked.end());
  return picked;
}

}  // namespace tsexplain
