// Clang Thread Safety Analysis annotations (-Wthread-safety).
//
// These macros let the compiler verify the repo's locking discipline at
// build time: a member declared TSE_GUARDED_BY(mu_) cannot be touched
// without holding mu_, a function declared TSE_REQUIRES(mu_) cannot be
// called without it, and forgetting to release a TSE_ACQUIRE'd capability
// is a build break. The CI `thread-safety` job compiles the tree with
// clang -Wthread-safety -Werror; under GCC (the default local toolchain)
// every macro expands to nothing, so annotations are free to sprinkle.
//
// The annotations only bite on types marked TSE_CAPABILITY — libstdc++'s
// std::mutex is NOT annotated, which is why the repo locks through the
// annotated wrappers in src/common/mutex.h instead (enforced by
// tools/lint_invariants.py: no raw std::mutex members outside mutex.h).
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
// (macro set mirrors the one recommended there, TSE_-prefixed).

#ifndef TSEXPLAIN_COMMON_THREAD_ANNOTATIONS_H_
#define TSEXPLAIN_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && !defined(SWIG)
#define TSE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define TSE_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Marks a class as a lockable capability ("mutex" names it in
/// diagnostics).
#define TSE_CAPABILITY(x) TSE_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define TSE_SCOPED_CAPABILITY TSE_THREAD_ANNOTATION(scoped_lockable)

/// Member data that may only be accessed while holding the capability.
#define TSE_GUARDED_BY(x) TSE_THREAD_ANNOTATION(guarded_by(x))

/// Pointer/smart-pointer member whose POINTEE may only be accessed while
/// holding the capability (the pointer itself is not guarded).
#define TSE_PT_GUARDED_BY(x) TSE_THREAD_ANNOTATION(pt_guarded_by(x))

/// The caller must hold the listed capabilities (exclusively).
#define TSE_REQUIRES(...) \
  TSE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The function acquires the listed capabilities and does not release
/// them before returning.
#define TSE_ACQUIRE(...) \
  TSE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases the listed capabilities (held on entry).
#define TSE_RELEASE(...) \
  TSE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns the value given
/// as the first argument, e.g. TSE_TRY_ACQUIRE(true). Further arguments
/// name the capabilities (default: this object's own). Taking the
/// success value through __VA_ARGS__ avoids a trailing comma when no
/// capability is listed — `try_acquire_capability(true, )` is a clang
/// parse error.
#define TSE_TRY_ACQUIRE(...) \
  TSE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// The caller must NOT hold the listed capabilities (deadlock guard for
/// functions that acquire them internally).
#define TSE_EXCLUDES(...) TSE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion to the analysis that the capability is held — the
/// escape hatch for code the analysis cannot follow (e.g. a callback that
/// contractually fires under its owner's lock). Use sparingly; every use
/// documents WHY the lock is known to be held.
#define TSE_ASSERT_CAPABILITY(x) \
  TSE_THREAD_ANNOTATION(assert_capability(x))

/// Declares lock acquisition order (deadlock prevention documentation).
#define TSE_ACQUIRED_BEFORE(...) \
  TSE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define TSE_ACQUIRED_AFTER(...) \
  TSE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Returns a reference to the capability guarding the returned data.
#define TSE_RETURN_CAPABILITY(x) TSE_THREAD_ANNOTATION(lock_returned(x))

/// Disables the analysis for one function. Last resort; every use
/// carries a justification comment.
#define TSE_NO_THREAD_SAFETY_ANALYSIS \
  TSE_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // TSEXPLAIN_COMMON_THREAD_ANNOTATIONS_H_
