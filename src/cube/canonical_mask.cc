#include "src/cube/canonical_mask.h"

#include <cstring>
#include <unordered_map>

#include "src/common/check.h"

namespace tsexplain {
namespace {

// FNV-1a over the raw bytes of every slice's finalized value stream, all
// slices at once: the cube stores partials time-major, so advancing t in
// the outer loop and e in the inner one sweeps contiguous memory instead of
// striding through the whole cube once per slice.
std::vector<uint64_t> HashAllSlices(const ExplanationCube& cube) {
  const size_t epsilon = cube.num_explanations();
  std::vector<uint64_t> h(epsilon, 1469598103934665603ULL);
  for (size_t t = 0; t < cube.n(); ++t) {
    for (size_t e = 0; e < epsilon; ++e) {
      const double d = cube.SliceValue(static_cast<ExplId>(e), t);
      uint64_t bits;
      std::memcpy(&bits, &d, sizeof(bits));
      for (int byte = 0; byte < 8; ++byte) {
        h[e] ^= (bits >> (byte * 8)) & 0xffULL;
        h[e] *= 1099511628211ULL;
      }
    }
  }
  return h;
}

bool SlicesEqual(const ExplanationCube& cube, ExplId a, ExplId b) {
  for (size_t t = 0; t < cube.n(); ++t) {
    if (cube.SliceValue(a, t) != cube.SliceValue(b, t)) return false;
  }
  return true;
}

}  // namespace

std::vector<bool> ComputeCanonicalMask(const ExplanationCube& cube,
                                       const ExplanationRegistry& registry) {
  TSE_CHECK_EQ(cube.num_explanations(), registry.num_explanations());
  const size_t epsilon = cube.num_explanations();
  std::vector<bool> canonical(epsilon, true);

  // Bucket by hash; within a bucket, compare pairwise (buckets are tiny).
  const std::vector<uint64_t> hashes = HashAllSlices(cube);
  std::unordered_map<uint64_t, std::vector<ExplId>> buckets;
  buckets.reserve(epsilon);
  for (size_t e = 0; e < epsilon; ++e) {
    buckets[hashes[e]].push_back(static_cast<ExplId>(e));
  }

  for (auto& [hash, members] : buckets) {
    (void)hash;
    if (members.size() < 2) continue;
    // Members are in ascending id order; registry ids are assigned in
    // enumeration order, so lower order tends to come first, but we still
    // pick the representative explicitly: lowest order, then lowest id.
    std::vector<bool> claimed(members.size(), false);
    for (size_t i = 0; i < members.size(); ++i) {
      if (claimed[i]) continue;
      ExplId rep = members[i];
      std::vector<size_t> group{i};
      for (size_t j = i + 1; j < members.size(); ++j) {
        if (claimed[j]) continue;
        if (SlicesEqual(cube, members[i], members[j])) {
          claimed[j] = true;
          group.push_back(j);
          const Explanation& cand = registry.explanation(members[j]);
          const Explanation& best = registry.explanation(rep);
          if (cand.order() < best.order() ||
              (cand.order() == best.order() && members[j] < rep)) {
            rep = members[j];
          }
        }
      }
      if (group.size() > 1) {
        for (size_t idx : group) {
          if (members[idx] != rep) {
            canonical[static_cast<size_t>(members[idx])] = false;
          }
        }
      }
    }
  }
  return canonical;
}

std::vector<bool> AndMasks(const std::vector<bool>& a,
                           const std::vector<bool>& b) {
  TSE_CHECK_EQ(a.size(), b.size());
  std::vector<bool> out(a.size());
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i] && b[i];
  return out;
}

}  // namespace tsexplain
