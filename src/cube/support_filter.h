// Support filter (paper section 7.5.1, the "w filter" optimization).
//
// "Given an explanation E, if each point in its aggregated time series has
// value smaller than a ratio of the corresponding value in the overall
// aggregated time series, we filter this explanation as its support is low
// and thus insignificant." Default ratio 0.001.

#ifndef TSEXPLAIN_CUBE_SUPPORT_FILTER_H_
#define TSEXPLAIN_CUBE_SUPPORT_FILTER_H_

#include <cstddef>
#include <vector>

#include "src/cube/explanation_cube.h"

namespace tsexplain {

inline constexpr double kDefaultFilterRatio = 0.001;

/// active[e] == true iff explanation e survives the filter, i.e. at least
/// one time bucket has |slice value| >= ratio * |overall value|.
std::vector<bool> ComputeSupportFilter(const ExplanationCube& cube,
                                       double ratio = kDefaultFilterRatio);

/// Number of `true` entries (the paper's "filtered epsilon").
size_t CountActive(const std::vector<bool>& active);

}  // namespace tsexplain

#endif  // TSEXPLAIN_CUBE_SUPPORT_FILTER_H_
