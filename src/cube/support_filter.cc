#include "src/cube/support_filter.h"

#include <cmath>

#include "src/common/check.h"

namespace tsexplain {

std::vector<bool> ComputeSupportFilter(const ExplanationCube& cube,
                                       double ratio) {
  TSE_CHECK_GE(ratio, 0.0);
  const size_t n = cube.n();
  std::vector<bool> active(cube.num_explanations(), false);
  for (size_t e = 0; e < cube.num_explanations(); ++e) {
    for (size_t t = 0; t < n; ++t) {
      const double slice = std::abs(cube.SliceValue(static_cast<ExplId>(e), t));
      // A zero slice value carries no support even when the overall value is
      // also zero, so require a strictly positive slice.
      if (slice > 0.0 && slice >= ratio * std::abs(cube.Overall(t))) {
        active[e] = true;
        break;
      }
    }
  }
  return active;
}

size_t CountActive(const std::vector<bool>& active) {
  size_t count = 0;
  for (bool b : active) {
    if (b) ++count;
  }
  return count;
}

}  // namespace tsexplain
