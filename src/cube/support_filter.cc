#include "src/cube/support_filter.h"

#include <cmath>

#include "src/common/check.h"

namespace tsexplain {

std::vector<bool> ComputeSupportFilter(const ExplanationCube& cube,
                                       double ratio) {
  TSE_CHECK_GE(ratio, 0.0);
  const size_t n = cube.n();
  const size_t epsilon = cube.num_explanations();
  std::vector<bool> active(epsilon, false);
  // Time-major sweep (matching the cube's SoA layout): for each bucket the
  // per-candidate reads are contiguous, and the overall threshold is hoisted
  // out of the inner loop.
  for (size_t t = 0; t < n; ++t) {
    const double threshold = ratio * std::abs(cube.Overall(t));
    for (size_t e = 0; e < epsilon; ++e) {
      if (active[e]) continue;
      const double slice = std::abs(cube.SliceValue(static_cast<ExplId>(e), t));
      // A zero slice value carries no support even when the overall value is
      // also zero, so require a strictly positive slice.
      if (slice > 0.0 && slice >= threshold) active[e] = true;
    }
  }
  return active;
}

size_t CountActive(const std::vector<bool>& active) {
  size_t count = 0;
  for (bool b : active) {
    if (b) ++count;
  }
  return count;
}

}  // namespace tsexplain
