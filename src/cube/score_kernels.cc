#include "src/cube/score_kernels.h"

#include <cmath>
#include <cstdlib>

#if defined(TSEXPLAIN_ENABLE_AVX2) && defined(__x86_64__)
#define TSE_SCORE_AVX2 1
#include <immintrin.h>
#endif

namespace tsexplain {

void ScoreAllScalar(const ScoreAllInputs& in, double* out) {
  const AggState ot = in.overall_test;
  const AggState oc = in.overall_control;
  for (size_t e = 0; e < in.epsilon; ++e) {
    const double f_test_wo =
        AggState{ot.sum - in.test_sums[e], ot.count - in.test_counts[e]}
            .Finalize(in.f);
    const double f_control_wo =
        AggState{oc.sum - in.control_sums[e], oc.count - in.control_counts[e]}
            .Finalize(in.f);
    out[e] = ComputeDiff(in.kind, in.f_test, in.f_control, f_test_wo,
                         f_control_wo)
                 .gamma;
  }
}

#ifdef TSE_SCORE_AVX2

namespace {

constexpr size_t kLanes = 4;  // doubles per __m256d

// Finalize four (sum, count) partials. Bit-identity with
// AggState::Finalize: kAvg's `count > 0 ? sum / count : 0` becomes a
// blend of the divisor to 1.0 where count <= 0 (the division result for
// those lanes is discarded by the and-mask, and no 0/0 NaN is ever
// produced), then an and with the all-ones compare mask — +0.0 exactly
// where the scalar returns 0.0.
template <AggregateFunction F>
__attribute__((target("avx2"))) inline __m256d FinalizeLanes(__m256d sum,
                                                             __m256d count) {
  if (F == AggregateFunction::kSum) return sum;
  if (F == AggregateFunction::kCount) return count;
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d positive = _mm256_cmp_pd(count, zero, _CMP_GT_OQ);
  const __m256d divisor = _mm256_blendv_pd(one, count, positive);
  return _mm256_and_pd(_mm256_div_pd(sum, divisor), positive);
}

// Four candidates of ComputeDiff's gamma, elementwise IEEE-identical to
// the scalar formulas in src/diff/diff_metrics.cc:
//  - abs is a sign-bit andnot (bit-exact, unlike any multiply trick);
//  - NO fused multiply-add anywhere (contraction would change results);
//  - per-lane guarded divisions blend the divisor to 1.0 where the guard
//    fires and blend the quotient away afterwards, so no lane divides by
//    a degenerate denominator;
//  - _mm256_min_pd(cap, x) has std::min(x, cap)'s operand semantics.
// The scalar-uniform guards (|delta| < eps; |overall_rate| < eps) are
// hoisted into ScoreAllAvx2Kernel and never reach this function.
template <DiffMetricKind K>
__attribute__((target("avx2"))) inline __m256d GammaLanes(
    __m256d f_test_wo, __m256d f_control_wo, __m256d delta,
    __m256d f_control, __m256d overall_rate) {
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  const __m256d delta_wo = _mm256_sub_pd(f_test_wo, f_control_wo);
  const __m256d contribution = _mm256_sub_pd(delta, delta_wo);
  if (K == DiffMetricKind::kAbsoluteChange) {
    return _mm256_andnot_pd(sign_mask, contribution);
  }
  if (K == DiffMetricKind::kRelativeChange) {
    return _mm256_andnot_pd(sign_mask, _mm256_div_pd(contribution, delta));
  }
  // kRiskRatio.
  const __m256d zero = _mm256_setzero_pd();
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d eps = _mm256_set1_pd(kDiffEps);
  const __m256d cap = _mm256_set1_pd(kRiskRatioCap);
  const __m256d slice_base = _mm256_sub_pd(f_control, f_control_wo);
  const __m256d base_small = _mm256_cmp_pd(
      _mm256_andnot_pd(sign_mask, slice_base), eps, _CMP_LT_OQ);
  const __m256d base_div = _mm256_blendv_pd(slice_base, one, base_small);
  const __m256d slice_rate = _mm256_blendv_pd(
      _mm256_div_pd(contribution, base_div), zero, base_small);
  const __m256d ratio = _mm256_div_pd(slice_rate, overall_rate);
  return _mm256_min_pd(cap, _mm256_andnot_pd(sign_mask, ratio));
}

template <AggregateFunction F, DiffMetricKind K>
__attribute__((target("avx2"))) void ScoreAllAvx2Kernel(
    const ScoreAllInputs& in, double* out) {
  const AggState ot = in.overall_test;
  const AggState oc = in.overall_control;
  const double delta_s = in.f_test - in.f_control;

  // The scalar-uniform guards: when they fire, the scalar path scores
  // EVERY candidate 0.0, so the whole sweep is a fill.
  double overall_rate_s = 0.0;
  bool all_zero = false;
  if (K == DiffMetricKind::kRelativeChange) {
    all_zero = std::abs(delta_s) < kDiffEps;
  } else if (K == DiffMetricKind::kRiskRatio) {
    overall_rate_s = std::abs(in.f_control) < kDiffEps
                         ? 0.0
                         : delta_s / in.f_control;
    all_zero = std::abs(overall_rate_s) < kDiffEps;
  }
  if (all_zero) {
    for (size_t e = 0; e < in.epsilon; ++e) out[e] = 0.0;
    return;
  }

  const __m256d ot_sum = _mm256_set1_pd(ot.sum);
  const __m256d ot_count = _mm256_set1_pd(ot.count);
  const __m256d oc_sum = _mm256_set1_pd(oc.sum);
  const __m256d oc_count = _mm256_set1_pd(oc.count);
  const __m256d delta = _mm256_set1_pd(delta_s);
  const __m256d f_control = _mm256_set1_pd(in.f_control);
  const __m256d overall_rate = _mm256_set1_pd(overall_rate_s);

  size_t e = 0;
  for (; e + kLanes <= in.epsilon; e += kLanes) {
    const __m256d test_wo = FinalizeLanes<F>(
        _mm256_sub_pd(ot_sum, _mm256_loadu_pd(in.test_sums + e)),
        _mm256_sub_pd(ot_count, _mm256_loadu_pd(in.test_counts + e)));
    const __m256d control_wo = FinalizeLanes<F>(
        _mm256_sub_pd(oc_sum, _mm256_loadu_pd(in.control_sums + e)),
        _mm256_sub_pd(oc_count, _mm256_loadu_pd(in.control_counts + e)));
    _mm256_storeu_pd(out + e, GammaLanes<K>(test_wo, control_wo, delta,
                                            f_control, overall_rate));
  }
  // Odd tail: the scalar reference on the remaining < kLanes candidates.
  for (; e < in.epsilon; ++e) {
    const double f_test_wo =
        AggState{ot.sum - in.test_sums[e], ot.count - in.test_counts[e]}
            .Finalize(F);
    const double f_control_wo =
        AggState{oc.sum - in.control_sums[e], oc.count - in.control_counts[e]}
            .Finalize(F);
    out[e] = ComputeDiff(K, in.f_test, in.f_control, f_test_wo,
                         f_control_wo)
                 .gamma;
  }
}

using KernelFn = void (*)(const ScoreAllInputs&, double*);

template <AggregateFunction F>
KernelFn PickByMetric(DiffMetricKind kind) {
  switch (kind) {
    case DiffMetricKind::kAbsoluteChange:
      return &ScoreAllAvx2Kernel<F, DiffMetricKind::kAbsoluteChange>;
    case DiffMetricKind::kRelativeChange:
      return &ScoreAllAvx2Kernel<F, DiffMetricKind::kRelativeChange>;
    case DiffMetricKind::kRiskRatio:
      return &ScoreAllAvx2Kernel<F, DiffMetricKind::kRiskRatio>;
  }
  return nullptr;
}

KernelFn PickKernel(AggregateFunction f, DiffMetricKind kind) {
  switch (f) {
    case AggregateFunction::kSum:
      return PickByMetric<AggregateFunction::kSum>(kind);
    case AggregateFunction::kCount:
      return PickByMetric<AggregateFunction::kCount>(kind);
    case AggregateFunction::kAvg:
      return PickByMetric<AggregateFunction::kAvg>(kind);
  }
  return nullptr;
}

bool CpuHasAvx2() {
  static const bool has_avx2 = __builtin_cpu_supports("avx2") != 0;
  return has_avx2;
}

}  // namespace

bool ScoreAllAvx2(const ScoreAllInputs& in, double* out) {
  if (!CpuHasAvx2()) return false;
  KernelFn kernel = PickKernel(in.f, in.kind);
  if (kernel == nullptr) return false;
  kernel(in, out);
  return true;
}

#else  // !TSE_SCORE_AVX2

bool ScoreAllAvx2(const ScoreAllInputs& in, double* out) {
  (void)in;
  (void)out;
  return false;
}

#endif  // TSE_SCORE_AVX2

namespace {

// maybe_unused: the TSEXPLAIN_SIMD=OFF build compiles ScoreAllUsesSimd
// to a constant false and never calls this.
[[maybe_unused]] bool ForcedScalarByEnv() {
  static const bool forced = [] {
    const char* value = std::getenv("TSE_FORCE_SCALAR");
    return value != nullptr && value[0] == '1';
  }();
  return forced;
}

}  // namespace

bool ScoreAllUsesSimd() {
#ifdef TSE_SCORE_AVX2
  return !ForcedScalarByEnv() && CpuHasAvx2();
#else
  return false;
#endif
}

void ScoreAllAuto(const ScoreAllInputs& in, double* out) {
  if (ScoreAllUsesSimd() && ScoreAllAvx2(in, out)) return;
  ScoreAllScalar(in, out);
}

}  // namespace tsexplain
