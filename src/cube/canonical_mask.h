// Redundant-cell deduplication for hierarchical explain-by attributes.
//
// When attributes are hierarchically related (S&P 500: category determines
// subcategory's rows, subcategory determines... e.g. subcategory=internet
// retail selects exactly the same records as category=technology &
// subcategory=internet retail), conjunction enumeration produces multiple
// cells with IDENTICAL slices. Keeping them all would (a) inflate epsilon
// and (b) let the "same" explanation appear twice. The paper's Table 6
// reports epsilon = 610 for S&P 500 = 11 categories + 96 subcategories +
// 503 stocks exactly, i.e. redundant conjunctions are not counted; we
// reproduce that with this canonical mask: within every group of cells
// whose partial series are bit-identical, only the lowest-order (then
// lowest-id) representative stays selectable. See DESIGN.md for the
// non-overlap trade-off discussion.

#ifndef TSEXPLAIN_CUBE_CANONICAL_MASK_H_
#define TSEXPLAIN_CUBE_CANONICAL_MASK_H_

#include <vector>

#include "src/cube/explanation_cube.h"
#include "src/diff/explanation_registry.h"

namespace tsexplain {

/// canonical[e] == true iff cell e is the representative of its
/// equal-slice group (most cells are their own group).
std::vector<bool> ComputeCanonicalMask(const ExplanationCube& cube,
                                       const ExplanationRegistry& registry);

/// a[i] && b[i] for masks of equal size.
std::vector<bool> AndMasks(const std::vector<bool>& a,
                           const std::vector<bool>& b);

}  // namespace tsexplain

#endif  // TSEXPLAIN_CUBE_CANONICAL_MASK_H_
