#include "src/cube/explanation_cube.h"

#include <algorithm>

#include "src/common/check.h"

namespace tsexplain {
namespace {

// Enumerates all non-empty attribute subsets of size <= max_order as bit
// masks over explain_by indices. Small: |A| <= ~6 in practice.
std::vector<uint32_t> SubsetMasks(size_t num_attrs, int max_order) {
  std::vector<uint32_t> masks;
  const uint32_t limit = 1u << num_attrs;
  for (uint32_t mask = 1; mask < limit; ++mask) {
    if (__builtin_popcount(mask) <= max_order) masks.push_back(mask);
  }
  return masks;
}

}  // namespace

ExplanationCube::ExplanationCube(const Table& table,
                                 const ExplanationRegistry& registry,
                                 AggregateFunction f, int measure_idx)
    : f_(f), time_labels_(table.time_labels()) {
  if (measure_idx >= 0) {
    TSE_CHECK_LT(static_cast<size_t>(measure_idx),
                 table.schema().num_measures());
  }
  const size_t n = table.num_time_buckets();
  overall_.assign(n, AggState{});
  slices_.assign(registry.num_explanations(), std::vector<AggState>(n));

  const std::vector<AttrId>& explain_by = registry.explain_by();
  const std::vector<uint32_t> masks =
      SubsetMasks(explain_by.size(), registry.max_order());

  // Rows with the same explain-by value tuple hit the same cells; memoize
  // the subset -> cell-id resolution per distinct tuple (relations have far
  // fewer distinct tuples than rows). Keyed by the exact tuple to rule out
  // hash collisions.
  struct TupleEntry {
    std::vector<ValueId> tuple;
    std::vector<ExplId> cells;
  };
  std::unordered_map<uint64_t, std::vector<TupleEntry>> tuple_cells;
  std::vector<Predicate> preds;
  std::vector<ValueId> tuple(explain_by.size());
  preds.reserve(static_cast<size_t>(registry.max_order()));
  for (size_t row = 0; row < table.num_rows(); ++row) {
    const size_t t = static_cast<size_t>(table.time(row));
    const double value =
        measure_idx < 0 ? 1.0 : table.measure(row, measure_idx);
    overall_[t].Add(value);

    uint64_t tuple_hash = 1469598103934665603ULL;
    for (size_t idx = 0; idx < explain_by.size(); ++idx) {
      tuple[idx] = table.dim(row, explain_by[idx]);
      tuple_hash ^=
          static_cast<uint64_t>(static_cast<uint32_t>(tuple[idx]));
      tuple_hash *= 1099511628211ULL;
    }
    std::vector<TupleEntry>& bucket = tuple_cells[tuple_hash];
    TupleEntry* entry = nullptr;
    for (TupleEntry& candidate : bucket) {
      if (candidate.tuple == tuple) {
        entry = &candidate;
        break;
      }
    }
    if (entry == nullptr) {
      bucket.push_back(TupleEntry{tuple, {}});
      entry = &bucket.back();
      entry->cells.reserve(masks.size());
      for (uint32_t mask : masks) {
        preds.clear();
        for (size_t idx = 0; idx < explain_by.size(); ++idx) {
          if (mask & (1u << idx)) {
            preds.push_back(Predicate{explain_by[idx], tuple[idx]});
          }
        }
        const ExplId id = registry.Lookup(Explanation::FromPredicates(preds));
        TSE_CHECK_NE(id, kInvalidExplId);
        entry->cells.push_back(id);
      }
    }
    for (ExplId id : entry->cells) {
      slices_[static_cast<size_t>(id)][t].Add(value);
    }
  }
}

DiffScore ExplanationCube::Score(DiffMetricKind kind, ExplId e,
                                 size_t t_control, size_t t_test) const {
  TSE_CHECK_LT(t_control, n());
  TSE_CHECK_LT(t_test, n());
  const std::vector<AggState>& slice = slices_[static_cast<size_t>(e)];
  const AggState& ot = overall_[t_test];
  const AggState& oc = overall_[t_control];
  return ComputeDiff(kind, ot.Finalize(f_), oc.Finalize(f_),
                     ot.Minus(slice[t_test]).Finalize(f_),
                     oc.Minus(slice[t_control]).Finalize(f_));
}

TimeSeries ExplanationCube::OverallSeries() const {
  TimeSeries out;
  out.labels = time_labels_;
  out.values.resize(n());
  for (size_t t = 0; t < n(); ++t) out.values[t] = Overall(t);
  return out;
}

TimeSeries ExplanationCube::SliceSeries(ExplId e) const {
  TSE_CHECK_GE(e, 0);
  TSE_CHECK_LT(static_cast<size_t>(e), slices_.size());
  TimeSeries out;
  out.labels = time_labels_;
  out.values.resize(n());
  for (size_t t = 0; t < n(); ++t) out.values[t] = SliceValue(e, t);
  return out;
}

namespace {

// Trailing moving average over AggState partials (clipped at the start so
// the output length is unchanged).
void SmoothPartials(std::vector<AggState>* series, int w) {
  const size_t n = series->size();
  std::vector<AggState> out(n);
  AggState window{};
  for (size_t i = 0; i < n; ++i) {
    window.Merge((*series)[i]);
    if (i >= static_cast<size_t>(w)) {
      window = window.Minus((*series)[i - static_cast<size_t>(w)]);
    }
    const double count = static_cast<double>(
        std::min(i + 1, static_cast<size_t>(w)));
    out[i] = AggState{window.sum / count, window.count / count};
  }
  *series = std::move(out);
}

}  // namespace

void ExplanationCube::SmoothInPlace(int w) {
  TSE_CHECK_GE(w, 1);
  if (w == 1) return;
  SmoothPartials(&overall_, w);
  for (auto& slice : slices_) SmoothPartials(&slice, w);
}

void ExplanationCube::AppendBucket(const AggState& overall,
                                   const std::vector<AggState>& slice_partials,
                                   const std::string& label) {
  TSE_CHECK_EQ(slice_partials.size(), slices_.size());
  overall_.push_back(overall);
  for (size_t e = 0; e < slices_.size(); ++e) {
    slices_[e].push_back(slice_partials[e]);
  }
  time_labels_.push_back(label.empty() ? std::to_string(time_labels_.size())
                                       : label);
}

}  // namespace tsexplain
