#include "src/cube/explanation_cube.h"

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "src/common/check.h"
#include "src/common/thread_pool.h"
#include "src/cube/score_kernels.h"

namespace tsexplain {
namespace {

// Enumerates all non-empty attribute subsets of size <= max_order as bit
// masks over explain_by indices. Small: |A| <= ~6 in practice.
std::vector<uint32_t> SubsetMasks(size_t num_attrs, int max_order) {
  std::vector<uint32_t> masks;
  const uint32_t limit = 1u << num_attrs;
  for (uint32_t mask = 1; mask < limit; ++mask) {
    if (__builtin_popcount(mask) <= max_order) masks.push_back(mask);
  }
  return masks;
}

}  // namespace

ExplanationCube::ExplanationCube(const Table& table,
                                 const ExplanationRegistry& registry,
                                 AggregateFunction f, int measure_idx,
                                 int threads)
    : f_(f),
      num_explanations_(registry.num_explanations()),
      time_labels_(table.time_labels()) {
  if (measure_idx >= 0) {
    TSE_CHECK_LT(static_cast<size_t>(measure_idx),
                 table.schema().num_measures());
  }
  const size_t n = table.num_time_buckets();
  const size_t epsilon = num_explanations_;
  overall_.assign(n, AggState{});
  slice_sums_.assign(n * epsilon, 0.0);
  slice_counts_.assign(n * epsilon, 0.0);

  const std::vector<AttrId>& explain_by = registry.explain_by();
  const std::vector<uint32_t> masks =
      SubsetMasks(explain_by.size(), registry.max_order());

  // Pass 1 (serial, cheap): resolve each row's cell list. Rows with the
  // same explain-by value tuple hit the same cells; the subset -> cell-id
  // resolution (the expensive registry lookups) happens once per DISTINCT
  // tuple, exactly as in the serial scan -- workers never duplicate it.
  // Keyed by the exact tuple to rule out hash collisions. This pass also
  // buckets rows by time (stable counting sort, preserving row order).
  const size_t num_rows = table.num_rows();
  TSE_CHECK_LT(num_rows, static_cast<size_t>(UINT32_MAX));
  std::vector<std::vector<ExplId>> cell_lists;  // one per distinct tuple
  std::vector<uint32_t> row_cells(num_rows);    // row -> cell_lists index
  std::vector<size_t> bucket_start(n + 1, 0);
  std::vector<size_t> rows_by_time(num_rows);
  {
    struct TupleEntry {
      std::vector<ValueId> tuple;
      uint32_t list = 0;
    };
    std::unordered_map<uint64_t, std::vector<TupleEntry>> tuple_cells;
    std::vector<Predicate> preds;
    std::vector<ValueId> tuple(explain_by.size());
    preds.reserve(static_cast<size_t>(registry.max_order()));
    for (size_t row = 0; row < num_rows; ++row) {
      ++bucket_start[static_cast<size_t>(table.time(row)) + 1];
      uint64_t tuple_hash = 1469598103934665603ULL;
      for (size_t idx = 0; idx < explain_by.size(); ++idx) {
        tuple[idx] = table.dim(row, explain_by[idx]);
        tuple_hash ^=
            static_cast<uint64_t>(static_cast<uint32_t>(tuple[idx]));
        tuple_hash *= 1099511628211ULL;
      }
      std::vector<TupleEntry>& bucket = tuple_cells[tuple_hash];
      TupleEntry* entry = nullptr;
      for (TupleEntry& candidate : bucket) {
        if (candidate.tuple == tuple) {
          entry = &candidate;
          break;
        }
      }
      if (entry == nullptr) {
        std::vector<ExplId> cells;
        cells.reserve(masks.size());
        for (uint32_t mask : masks) {
          preds.clear();
          for (size_t idx = 0; idx < explain_by.size(); ++idx) {
            if (mask & (1u << idx)) {
              preds.push_back(Predicate{explain_by[idx], tuple[idx]});
            }
          }
          const ExplId id =
              registry.Lookup(Explanation::FromPredicates(preds));
          TSE_CHECK_NE(id, kInvalidExplId);
          cells.push_back(id);
        }
        bucket.push_back(
            TupleEntry{tuple, static_cast<uint32_t>(cell_lists.size())});
        entry = &bucket.back();
        cell_lists.push_back(std::move(cells));
      }
      row_cells[row] = entry->list;
    }
    for (size_t t = 0; t < n; ++t) bucket_start[t + 1] += bucket_start[t];
    std::vector<size_t> cursor(bucket_start.begin(), bucket_start.end() - 1);
    for (size_t row = 0; row < num_rows; ++row) {
      rows_by_time[cursor[static_cast<size_t>(table.time(row))]++] = row;
    }
  }

  // Pass 2: accumulate. Workers own DISJOINT time ranges, so every
  // (cell, t) partial accumulates its rows in the exact same ascending row
  // order at any thread count -- the parallel build is bit-identical to
  // the serial one, with no merge step and no per-worker cube copies.
  auto accumulate_buckets = [&](size_t t_lo, size_t t_hi) {
    for (size_t t = t_lo; t < t_hi; ++t) {
      double* sums = slice_sums_.data() + t * epsilon;
      double* counts = slice_counts_.data() + t * epsilon;
      for (size_t pos = bucket_start[t]; pos < bucket_start[t + 1]; ++pos) {
        const size_t row = rows_by_time[pos];
        const double value =
            measure_idx < 0 ? 1.0 : table.measure(row, measure_idx);
        overall_[t].Add(value);
        for (ExplId id : cell_lists[row_cells[row]]) {
          sums[static_cast<size_t>(id)] += value;
          counts[static_cast<size_t>(id)] += 1.0;
        }
      }
    }
  };

  if (threads <= 1 || n < 2 || num_rows < 4096) {
    accumulate_buckets(0, n);
  } else {
    // Over-partition relative to the thread count so dynamic assignment
    // balances skewed buckets; task boundaries cannot affect the result
    // (disjoint time ranges, fixed within-bucket order).
    const size_t num_tasks =
        std::min(n, static_cast<size_t>(threads) * 4);
    ThreadPool::Shared().ParallelFor(num_tasks, threads, [&](size_t task) {
      accumulate_buckets(n * task / num_tasks, n * (task + 1) / num_tasks);
    });
  }
  RefreshOverallCache();
}

void ExplanationCube::RefreshOverallCache() {
  overall_fin_.resize(overall_.size());
  for (size_t t = 0; t < overall_.size(); ++t) {
    overall_fin_[t] = overall_[t].Finalize(f_);
  }
}

DiffScore ExplanationCube::Score(DiffMetricKind kind, ExplId e,
                                 size_t t_control, size_t t_test) const {
  TSE_CHECK_LT(t_control, n());
  TSE_CHECK_LT(t_test, n());
  const AggState& ot = overall_[t_test];
  const AggState& oc = overall_[t_control];
  const size_t it = t_test * num_explanations_ + static_cast<size_t>(e);
  const size_t ic = t_control * num_explanations_ + static_cast<size_t>(e);
  const double f_test_wo =
      AggState{ot.sum - slice_sums_[it], ot.count - slice_counts_[it]}
          .Finalize(f_);
  const double f_control_wo =
      AggState{oc.sum - slice_sums_[ic], oc.count - slice_counts_[ic]}
          .Finalize(f_);
  return ComputeDiff(kind, overall_fin_[t_test], overall_fin_[t_control],
                     f_test_wo, f_control_wo);
}

void ExplanationCube::ScoreAll(DiffMetricKind kind, size_t t_control,
                               size_t t_test,
                               const std::vector<bool>* active,
                               std::vector<double>* gammas) const {
  TSE_CHECK_LT(t_control, n());
  TSE_CHECK_LT(t_test, n());
  const size_t epsilon = num_explanations_;
  TSE_CHECK_EQ(gammas->size(), epsilon);
  if (active != nullptr) TSE_CHECK_EQ(active->size(), epsilon);
  ScoreAllInputs in;
  in.f = f_;
  in.kind = kind;
  in.overall_test = overall_[t_test];
  in.overall_control = overall_[t_control];
  in.f_test = overall_fin_[t_test];
  in.f_control = overall_fin_[t_control];
  in.test_sums = slice_sums_.data() + t_test * epsilon;
  in.test_counts = slice_counts_.data() + t_test * epsilon;
  in.control_sums = slice_sums_.data() + t_control * epsilon;
  in.control_counts = slice_counts_.data() + t_control * epsilon;
  in.epsilon = epsilon;
  double* out = gammas->data();
  // Kernel dispatch (scalar reference or bit-identical AVX2 — see
  // src/cube/score_kernels.h for the policy). Every lane is computed,
  // then masked-off candidates are zeroed: identical output to skipping
  // them, and the kernel keeps its contiguous four-stream sweep.
  ScoreAllAuto(in, out);
  if (active != nullptr) {
    for (size_t e = 0; e < epsilon; ++e) {
      if (!(*active)[e]) out[e] = 0.0;
    }
  }
}

TimeSeries ExplanationCube::OverallSeries() const {
  TimeSeries out;
  out.labels = time_labels_;
  out.values = overall_fin_;
  return out;
}

TimeSeries ExplanationCube::SliceSeries(ExplId e) const {
  TSE_CHECK_GE(e, 0);
  TSE_CHECK_LT(static_cast<size_t>(e), num_explanations_);
  TimeSeries out;
  out.labels = time_labels_;
  out.values.resize(n());
  for (size_t t = 0; t < n(); ++t) out.values[t] = SliceValue(e, t);
  return out;
}

namespace {

// Trailing moving average over AggState partials (clipped at the start so
// the output length is unchanged).
void SmoothPartials(std::vector<AggState>* series, int w) {
  const size_t n = series->size();
  std::vector<AggState> out(n);
  AggState window{};
  for (size_t i = 0; i < n; ++i) {
    window.Merge((*series)[i]);
    if (i >= static_cast<size_t>(w)) {
      window = window.Minus((*series)[i - static_cast<size_t>(w)]);
    }
    const double count = static_cast<double>(
        std::min(i + 1, static_cast<size_t>(w)));
    out[i] = AggState{window.sum / count, window.count / count};
  }
  *series = std::move(out);
}

}  // namespace

void ExplanationCube::SmoothInPlace(int w) {
  TSE_CHECK_GE(w, 1);
  if (w == 1) return;
  SmoothPartials(&overall_, w);
  // Slice smoothing sweeps time-major: one epsilon-wide window accumulator
  // advances over contiguous rows, performing the exact same per-slice
  // arithmetic sequence as smoothing each slice on its own (bit-identical),
  // without the strided per-slice walks the SoA layout would otherwise pay.
  const size_t n = this->n();
  const size_t epsilon = num_explanations_;
  std::vector<double> win_sum(epsilon, 0.0);
  std::vector<double> win_count(epsilon, 0.0);
  std::vector<double> out_sums(n * epsilon);
  std::vector<double> out_counts(n * epsilon);
  for (size_t t = 0; t < n; ++t) {
    const double* in_s = slice_sums_.data() + t * epsilon;
    const double* in_c = slice_counts_.data() + t * epsilon;
    double* out_s = out_sums.data() + t * epsilon;
    double* out_c = out_counts.data() + t * epsilon;
    const double denom =
        static_cast<double>(std::min(t + 1, static_cast<size_t>(w)));
    if (t >= static_cast<size_t>(w)) {
      const double* old_s =
          slice_sums_.data() + (t - static_cast<size_t>(w)) * epsilon;
      const double* old_c =
          slice_counts_.data() + (t - static_cast<size_t>(w)) * epsilon;
      for (size_t e = 0; e < epsilon; ++e) {
        win_sum[e] += in_s[e];
        win_count[e] += in_c[e];
        win_sum[e] -= old_s[e];
        win_count[e] -= old_c[e];
        out_s[e] = win_sum[e] / denom;
        out_c[e] = win_count[e] / denom;
      }
    } else {
      for (size_t e = 0; e < epsilon; ++e) {
        win_sum[e] += in_s[e];
        win_count[e] += in_c[e];
        out_s[e] = win_sum[e] / denom;
        out_c[e] = win_count[e] / denom;
      }
    }
  }
  slice_sums_ = std::move(out_sums);
  slice_counts_ = std::move(out_counts);
  RefreshOverallCache();
}

void ExplanationCube::AppendBucket(const AggState& overall,
                                   const std::vector<AggState>& slice_partials,
                                   const std::string& label) {
  TSE_CHECK_EQ(slice_partials.size(), num_explanations_);
  overall_.push_back(overall);
  overall_fin_.push_back(overall.Finalize(f_));
  // No reserve: push_back's geometric growth keeps repeated streaming
  // appends amortized O(1); an exact-size reserve here would force a full
  // SoA copy on every bucket.
  for (const AggState& partial : slice_partials) {
    slice_sums_.push_back(partial.sum);
    slice_counts_.push_back(partial.count);
  }
  time_labels_.push_back(label.empty() ? std::to_string(time_labels_.size())
                                       : label);
}

}  // namespace tsexplain
