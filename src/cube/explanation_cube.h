// Explanation cube: precomputation module (a) of the pipeline (Figure 7).
//
// For every candidate explanation E the cube materializes the aggregated
// time series of its slice, ts(sigma_E R), as decomposable (sum, count)
// partials. Because the aggregate is decomposable, the "without E" series
// ts(R - sigma_E R) is derived by subtracting partials; the diff score
// gamma(E) for ANY segment [t_c, t_t] is then O(1) (paper section 5.2).
//
// Layout: slice partials are stored as flat structure-of-arrays, TIME-major
// (`slice_sums_[t * epsilon + e]`). Time-major wins on both hot access
// patterns: the per-segment batch scorer (ScoreAll) sweeps every candidate
// at two fixed endpoints -- two contiguous streams -- and the streaming
// AppendBucket is a contiguous append of one epsilon-sized block. The
// finalized overall series is cached (`overall_fin_`) so no scoring path
// ever re-finalizes the overall aggregate per candidate.

#ifndef TSEXPLAIN_CUBE_EXPLANATION_CUBE_H_
#define TSEXPLAIN_CUBE_EXPLANATION_CUBE_H_

#include <vector>

#include "src/diff/diff_metrics.h"
#include "src/diff/explanation_registry.h"
#include "src/table/group_by.h"
#include "src/table/table.h"
#include "src/ts/time_series.h"

namespace tsexplain {

/// Materialized per-explanation time-series partials + the overall series.
class ExplanationCube {
 public:
  /// Scans `table` once, accumulating partials for every registry cell.
  /// `measure_idx` of -1 means COUNT(*) semantics. `threads` > 1 partitions
  /// the scan by time bucket over the shared ThreadPool; every (cell, t)
  /// partial still accumulates its rows in ascending row order, so the
  /// result is bit-identical at any thread count (and to the serial scan).
  ExplanationCube(const Table& table, const ExplanationRegistry& registry,
                  AggregateFunction f, int measure_idx, int threads = 1);

  /// Number of time buckets.
  size_t n() const { return overall_.size(); }

  /// Number of candidate explanations covered (epsilon).
  size_t num_explanations() const { return num_explanations_; }

  AggregateFunction aggregate() const { return f_; }

  /// Finalized overall aggregate at time t: f(M, R at t). Cached.
  double Overall(size_t t) const { return overall_fin_[t]; }

  /// Finalized slice aggregate at time t: f(M, sigma_E R at t).
  double SliceValue(ExplId e, size_t t) const {
    const size_t idx = t * num_explanations_ + static_cast<size_t>(e);
    return AggState{slice_sums_[idx], slice_counts_[idx]}.Finalize(f_);
  }

  /// gamma(E) and tau(E) for the segment with control endpoint `t_control`
  /// and test endpoint `t_test` (Definitions 3.2/3.3). O(1).
  DiffScore Score(DiffMetricKind kind, ExplId e, size_t t_control,
                  size_t t_test) const;

  /// Batch module (a): gamma(E) for EVERY candidate on one segment, filling
  /// `gammas` (must be sized num_explanations()). Cells where `active` is
  /// false (nullptr = all active) score 0. Bit-identical to calling Score
  /// per candidate, but hoists the overall finalization out of the loop and
  /// sweeps two contiguous SoA streams instead of chasing per-slice heap
  /// vectors. This is the hottest loop in the system (every cache-miss
  /// TopFor runs it).
  void ScoreAll(DiffMetricKind kind, size_t t_control, size_t t_test,
                const std::vector<bool>* active,
                std::vector<double>* gammas) const;

  /// Dense overall aggregated series (with time labels).
  TimeSeries OverallSeries() const;

  /// Dense slice series for one explanation.
  TimeSeries SliceSeries(ExplId e) const;

  /// Appends one new time bucket of partials (streaming extension,
  /// section 8). `slice_partials` must be aligned with the registry ids and
  /// `overall` must equal the sum over disjoint order-1 slices.
  void AppendBucket(const AggState& overall,
                    const std::vector<AggState>& slice_partials,
                    const std::string& label = "");

  /// Smooths every partial series with a trailing moving average of window
  /// `w` (paper section 7.4: fuzzy datasets are smoothed before being
  /// explained). Averaging the (sum, count) partials is a linear operation,
  /// so decomposability -- and hence O(1) diff scores -- is preserved.
  void SmoothInPlace(int w);

 private:
  void RefreshOverallCache();

  AggregateFunction f_;
  size_t num_explanations_ = 0;
  std::vector<AggState> overall_;    // [t]
  std::vector<double> overall_fin_;  // [t], Finalize(f_) of overall_
  // Time-major SoA slice partials: index [t * num_explanations_ + e].
  std::vector<double> slice_sums_;
  std::vector<double> slice_counts_;
  std::vector<std::string> time_labels_;
};

}  // namespace tsexplain

#endif  // TSEXPLAIN_CUBE_EXPLANATION_CUBE_H_
