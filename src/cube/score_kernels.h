// Vectorized batch-scoring kernels behind ExplanationCube::ScoreAll.
//
// One segment's gamma sweep reads four contiguous SoA streams (slice sums
// + counts at the two endpoints) and applies ComputeDiff per candidate —
// the hottest loop in the system (docs/PERF.md "SIMD scoring"). The AVX2
// kernels process four candidates per iteration and are BIT-IDENTICAL to
// the scalar reference for every AggregateFunction x DiffMetricKind pair:
// same elementwise IEEE operation order, abs as a sign-bit mask, guarded
// divisions blended away instead of taken, and the scalar-uniform branches
// (|delta| < eps, |overall_rate| < eps) hoisted out of the lane loop.
// tests/test_simd_score.cc asserts the identity exhaustively.
//
// Dispatch policy: the AVX2 path runs only when (a) it was compiled in
// (CMake -DTSEXPLAIN_SIMD=ON, x86-64 only), (b) the CPU reports AVX2 at
// runtime, and (c) TSE_FORCE_SCALAR=1 is not set in the environment.
// Everything else — other ISAs, older x86, the scalar-dispatch CI job —
// takes the scalar reference. No global -mavx2: the kernels carry
// function-level target attributes, so the rest of the binary stays
// baseline-ISA clean.

#ifndef TSEXPLAIN_CUBE_SCORE_KERNELS_H_
#define TSEXPLAIN_CUBE_SCORE_KERNELS_H_

#include <cstddef>

#include "src/diff/diff_metrics.h"
#include "src/table/group_by.h"

namespace tsexplain {

/// One segment's batch-scoring job: overall partials + finalized overall
/// values at the two endpoints, and the four contiguous candidate streams
/// (length `epsilon` each).
struct ScoreAllInputs {
  AggregateFunction f = AggregateFunction::kSum;
  DiffMetricKind kind = DiffMetricKind::kAbsoluteChange;
  AggState overall_test;
  AggState overall_control;
  double f_test = 0.0;
  double f_control = 0.0;
  const double* test_sums = nullptr;
  const double* test_counts = nullptr;
  const double* control_sums = nullptr;
  const double* control_counts = nullptr;
  size_t epsilon = 0;
};

/// Scalar reference: exactly Score()'s arithmetic per candidate
/// (AggState::Finalize + ComputeDiff). The fallback and the ground truth
/// the vectorized path is asserted against.
void ScoreAllScalar(const ScoreAllInputs& in, double* out);

/// Runs the AVX2 kernel unconditionally (ignoring TSE_FORCE_SCALAR).
/// Returns false — leaving `out` untouched — when AVX2 is compiled out or
/// the CPU lacks it. Exposed for the bit-identity tests and the
/// bench_micro_core speedup gate; production code calls ScoreAllAuto.
bool ScoreAllAvx2(const ScoreAllInputs& in, double* out);

/// The production dispatch: AVX2 when available and not disabled via
/// TSE_FORCE_SCALAR=1, scalar otherwise.
void ScoreAllAuto(const ScoreAllInputs& in, double* out);

/// True when ScoreAllAuto will take the AVX2 path (compiled in + CPU
/// support + not forced off). Stable after the first call.
bool ScoreAllUsesSimd();

}  // namespace tsexplain

#endif  // TSEXPLAIN_CUBE_SCORE_KERNELS_H_
