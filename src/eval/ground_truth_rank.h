// Ground-truth-rank evaluation of variance designs (paper section 4.2.2,
// Figure 6).
//
// A variance metric is effective if the ground-truth segmentation scores
// at (or near) the minimum of the Problem-1 objective. Because the space of
// K-segmentations is huge, the paper samples 10000 random schemes with the
// oracle K and ranks the ground truth's objective among them: the smaller
// the rank, the better the metric.

#ifndef TSEXPLAIN_EVAL_GROUND_TRUTH_RANK_H_
#define TSEXPLAIN_EVAL_GROUND_TRUTH_RANK_H_

#include <cstdint>
#include <vector>

#include "src/seg/variance.h"
#include "src/seg/variance_table.h"

namespace tsexplain {

struct GroundTruthRankResult {
  /// 1 + number of sampled schemes with a strictly lower objective.
  int rank = 0;
  /// Number of schemes actually sampled (paper: 10000).
  int samples = 0;
  /// Objective of the ground truth under the metric.
  double ground_truth_score = 0.0;
};

/// Samples `samples` random segmentations with the ground truth's K
/// (uniform distinct interior cuts) and ranks the ground truth among them.
/// Deterministic in `seed`. The calc's explainer cache makes repeated
/// scheme evaluations cheap.
GroundTruthRankResult EvaluateGroundTruthRank(
    VarianceCalculator& calc, const std::vector<int>& ground_truth_cuts,
    int samples, uint64_t seed);

/// Objective of a scheme from a precomputed table whose candidate positions
/// are ALL points (positions[i] == i).
double ObjectiveFromTable(const VarianceTable& table,
                          const std::vector<int>& cuts);

/// Fast-path variant of EvaluateGroundTruthRank backed by a precomputed
/// full-resolution VarianceTable: each sampled scheme costs O(K) lookups.
/// Produces identical results to the calculator path.
GroundTruthRankResult EvaluateGroundTruthRankWithTable(
    const VarianceTable& table, const std::vector<int>& ground_truth_cuts,
    int samples, uint64_t seed);

/// Draws one random segmentation of [0, n-1] with k segments: k-1 distinct
/// interior cuts, uniform over position sets (endpoints added).
std::vector<int> RandomSegmentation(int n, int k, class Rng& rng);

}  // namespace tsexplain

#endif  // TSEXPLAIN_EVAL_GROUND_TRUTH_RANK_H_
