#include "src/eval/metric_comparison.h"

#include <algorithm>
#include <numeric>

#include "src/common/check.h"

namespace tsexplain {

std::vector<double> CompetitionRanks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<double> ranks(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    size_t better = 0;
    for (size_t j = 0; j < n; ++j) {
      if (values[j] < values[i]) ++better;
    }
    ranks[i] = static_cast<double>(better) + 1.0;
  }
  return ranks;
}

std::vector<double> FractionalRanks(const std::vector<double>& values) {
  const size_t n = values.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&values](size_t a, size_t b) {
    return values[a] < values[b];
  });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Positions i..j (0-based) share the average rank.
    const double avg_rank =
        (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t p = i; p <= j; ++p) ranks[order[p]] = avg_rank;
    i = j + 1;
  }
  return ranks;
}

MetricComparisonResult CompareVarianceMetrics(
    SegmentExplainer& explainer, const std::vector<int>& ground_truth_cuts,
    int samples, uint64_t seed, int threads) {
  std::vector<int> positions(static_cast<size_t>(explainer.n()));
  std::iota(positions.begin(), positions.end(), 0);

  MetricComparisonResult result;
  std::vector<double> gt_ranks;
  for (VarianceMetric metric : kAllVarianceMetrics) {
    // Precompute every segment's weighted variance once (the 10000 sampled
    // schemes then cost O(K) lookups each). All metrics share the
    // explainer's explanation cache, so CA runs once per segment total.
    VarianceCalculator calc(explainer, metric);
    const VarianceTable table =
        VarianceTable::Compute(calc, positions, /*max_span=*/-1, threads);
    // Same seed for every metric: identical sampled schemes, so metric
    // ranks differ only because the objective differs.
    const GroundTruthRankResult r = EvaluateGroundTruthRankWithTable(
        table, ground_truth_cuts, samples, seed);
    result.per_metric.push_back(r);
    gt_ranks.push_back(static_cast<double>(r.rank));
  }
  result.metric_rank = CompetitionRanks(gt_ranks);
  return result;
}

}  // namespace tsexplain
