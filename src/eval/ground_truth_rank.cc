#include "src/eval/ground_truth_rank.h"

#include "src/common/check.h"
#include "src/common/rng.h"

namespace tsexplain {

std::vector<int> RandomSegmentation(int n, int k, Rng& rng) {
  TSE_CHECK_GE(k, 1);
  TSE_CHECK_LE(k, n - 1);
  std::vector<int> cuts{0};
  if (k > 1) {
    std::vector<int> interior = rng.SampleDistinctSorted(1, n - 2, k - 1);
    cuts.insert(cuts.end(), interior.begin(), interior.end());
  }
  cuts.push_back(n - 1);
  return cuts;
}

GroundTruthRankResult EvaluateGroundTruthRank(
    VarianceCalculator& calc, const std::vector<int>& ground_truth_cuts,
    int samples, uint64_t seed) {
  TSE_CHECK_GE(samples, 1);
  const int n = calc.explainer().n();
  const int k = static_cast<int>(ground_truth_cuts.size()) - 1;
  TSE_CHECK_GE(k, 1);

  GroundTruthRankResult result;
  result.samples = samples;
  result.ground_truth_score = TotalObjective(calc, ground_truth_cuts);

  Rng rng(seed);
  int better = 0;
  for (int s = 0; s < samples; ++s) {
    const std::vector<int> scheme = RandomSegmentation(n, k, rng);
    if (TotalObjective(calc, scheme) < result.ground_truth_score) {
      ++better;
    }
  }
  result.rank = better + 1;
  return result;
}

double ObjectiveFromTable(const VarianceTable& table,
                          const std::vector<int>& cuts) {
  TSE_CHECK_GE(cuts.size(), 2u);
  double total = 0.0;
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    total += table.WeightedVar(static_cast<size_t>(cuts[i]),
                               static_cast<size_t>(cuts[i + 1]));
  }
  return total;
}

GroundTruthRankResult EvaluateGroundTruthRankWithTable(
    const VarianceTable& table, const std::vector<int>& ground_truth_cuts,
    int samples, uint64_t seed) {
  TSE_CHECK_GE(samples, 1);
  // Identity-position requirement so cut values index the table directly.
  for (size_t i = 0; i < table.positions().size(); ++i) {
    TSE_CHECK_EQ(table.positions()[i], static_cast<int>(i));
  }
  const int n = static_cast<int>(table.num_positions());
  const int k = static_cast<int>(ground_truth_cuts.size()) - 1;
  TSE_CHECK_GE(k, 1);

  GroundTruthRankResult result;
  result.samples = samples;
  result.ground_truth_score = ObjectiveFromTable(table, ground_truth_cuts);

  Rng rng(seed);
  int better = 0;
  for (int s = 0; s < samples; ++s) {
    const std::vector<int> scheme = RandomSegmentation(n, k, rng);
    if (ObjectiveFromTable(table, scheme) < result.ground_truth_score) {
      ++better;
    }
  }
  result.rank = better + 1;
  return result;
}

}  // namespace tsexplain
