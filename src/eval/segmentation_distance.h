// Segmentation-vs-ground-truth quality metric (paper section 7.3).
//
// The paper computes "the edit distance between outputs and ground truth
// ... normalized by K and n", called distance percent (%). The exact
// formula is not spelled out; we use an optimal monotone alignment of the
// INTERIOR cut points (dynamic program): matching cut a to cut b costs
// |a - b| / n, an unmatched cut on either side costs 1/2 (half the maximal
// normalized match cost), and the total is divided by
// max(#interior_pred, #interior_gt, 1) and scaled by 100. An exact match
// scores 0; lower is better -- the shape the paper relies on.

#ifndef TSEXPLAIN_EVAL_SEGMENTATION_DISTANCE_H_
#define TSEXPLAIN_EVAL_SEGMENTATION_DISTANCE_H_

#include <vector>

namespace tsexplain {

/// Alignment edit distance between the interior cuts of two segmentations
/// (cut vectors include the endpoints 0 and n-1). Returns the normalized
/// cost BEFORE the x100 scaling.
double SegmentationAlignmentCost(const std::vector<int>& predicted,
                                 const std::vector<int>& ground_truth, int n);

/// distance percent (%) = 100 * SegmentationAlignmentCost.
double DistancePercent(const std::vector<int>& predicted,
                       const std::vector<int>& ground_truth, int n);

/// Precision/recall of interior-cut detection with a position tolerance:
/// a predicted cut is a true positive if some ground-truth cut lies within
/// `tolerance` positions (greedy one-to-one matching, nearest first).
/// Complements distance-percent with an intuitive hit-rate reading.
struct CutPrecisionRecall {
  double precision = 1.0;  // matched predicted / total predicted
  double recall = 1.0;     // matched ground truth / total ground truth
  int matched = 0;

  double F1() const {
    const double denom = precision + recall;
    return denom <= 0.0 ? 0.0 : 2.0 * precision * recall / denom;
  }
};

CutPrecisionRecall EvaluateCutPrecisionRecall(
    const std::vector<int>& predicted, const std::vector<int>& ground_truth,
    int tolerance);

}  // namespace tsexplain

#endif  // TSEXPLAIN_EVAL_SEGMENTATION_DISTANCE_H_
