#include "src/eval/segmentation_distance.h"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "src/common/check.h"

namespace tsexplain {
namespace {

constexpr double kUnmatchedCost = 0.5;

std::vector<int> InteriorCuts(const std::vector<int>& cuts) {
  TSE_CHECK_GE(cuts.size(), 2u);
  std::vector<int> interior(cuts.begin() + 1, cuts.end() - 1);
  TSE_CHECK(std::is_sorted(interior.begin(), interior.end()));
  return interior;
}

}  // namespace

double SegmentationAlignmentCost(const std::vector<int>& predicted,
                                 const std::vector<int>& ground_truth,
                                 int n) {
  TSE_CHECK_GE(n, 2);
  const std::vector<int> a = InteriorCuts(predicted);
  const std::vector<int> b = InteriorCuts(ground_truth);
  const size_t la = a.size();
  const size_t lb = b.size();
  if (la == 0 && lb == 0) return 0.0;

  // Levenshtein-style alignment with position-aware substitution cost.
  std::vector<std::vector<double>> dp(
      la + 1, std::vector<double>(lb + 1, 0.0));
  for (size_t i = 1; i <= la; ++i) dp[i][0] = dp[i - 1][0] + kUnmatchedCost;
  for (size_t j = 1; j <= lb; ++j) dp[0][j] = dp[0][j - 1] + kUnmatchedCost;
  for (size_t i = 1; i <= la; ++i) {
    for (size_t j = 1; j <= lb; ++j) {
      const double sub_cost =
          static_cast<double>(std::abs(a[i - 1] - b[j - 1])) /
          static_cast<double>(n);
      dp[i][j] = std::min({dp[i - 1][j - 1] + sub_cost,
                           dp[i - 1][j] + kUnmatchedCost,
                           dp[i][j - 1] + kUnmatchedCost});
    }
  }
  const double denom = static_cast<double>(std::max({la, lb, size_t{1}}));
  return dp[la][lb] / denom;
}

double DistancePercent(const std::vector<int>& predicted,
                       const std::vector<int>& ground_truth, int n) {
  return 100.0 * SegmentationAlignmentCost(predicted, ground_truth, n);
}

CutPrecisionRecall EvaluateCutPrecisionRecall(
    const std::vector<int>& predicted, const std::vector<int>& ground_truth,
    int tolerance) {
  TSE_CHECK_GE(tolerance, 0);
  const std::vector<int> pred = InteriorCuts(predicted);
  const std::vector<int> truth = InteriorCuts(ground_truth);

  // Greedy nearest-pair matching: collect all candidate pairs within
  // tolerance, take them closest-first, each side used once.
  struct Pair {
    int distance;
    size_t p;
    size_t g;
  };
  std::vector<Pair> pairs;
  for (size_t p = 0; p < pred.size(); ++p) {
    for (size_t g = 0; g < truth.size(); ++g) {
      const int d = std::abs(pred[p] - truth[g]);
      if (d <= tolerance) pairs.push_back(Pair{d, p, g});
    }
  }
  std::sort(pairs.begin(), pairs.end(), [](const Pair& a, const Pair& b) {
    if (a.distance != b.distance) return a.distance < b.distance;
    if (a.p != b.p) return a.p < b.p;
    return a.g < b.g;
  });
  std::vector<bool> p_used(pred.size(), false), g_used(truth.size(), false);
  CutPrecisionRecall result;
  for (const Pair& pair : pairs) {
    if (p_used[pair.p] || g_used[pair.g]) continue;
    p_used[pair.p] = true;
    g_used[pair.g] = true;
    ++result.matched;
  }
  result.precision = pred.empty()
                         ? 1.0
                         : static_cast<double>(result.matched) /
                               static_cast<double>(pred.size());
  result.recall = truth.empty()
                      ? 1.0
                      : static_cast<double>(result.matched) /
                            static_cast<double>(truth.size());
  return result;
}

}  // namespace tsexplain
