// Cross-metric comparison harness for Figure 6.
//
// For one dataset: compute every variance metric's ground-truth rank, then
// rank the METRICS against each other (1 = best) by their ground-truth
// rank, averaging tied ranks (fractional ranking) so incomparable metrics
// share credit. Figure 6 then averages these per-metric ranks over all
// datasets of one SNR level.

#ifndef TSEXPLAIN_EVAL_METRIC_COMPARISON_H_
#define TSEXPLAIN_EVAL_METRIC_COMPARISON_H_

#include <cstdint>
#include <vector>

#include "src/eval/ground_truth_rank.h"
#include "src/seg/segment_distance.h"
#include "src/seg/segment_explainer.h"

namespace tsexplain {

struct MetricComparisonResult {
  /// Ground-truth rank per metric, aligned with kAllVarianceMetrics.
  std::vector<GroundTruthRankResult> per_metric;
  /// Competition rank (1 = best, ties share the better rank -- the paper's
  /// Figure 6 convention: at SNR 50 every metric "ranks 1st").
  std::vector<double> metric_rank;
};

/// Runs the ground-truth-rank evaluation for all eight variance metrics on
/// one dataset. `explainer` must wrap the dataset's cube; all metrics share
/// its explanation cache (identical segment queries), so the expensive CA
/// work is paid once. `threads` > 1 fans each metric's variance-table fill
/// (including the all-pair distance matrix) out over the shared ThreadPool;
/// results are bit-identical to the serial run.
MetricComparisonResult CompareVarianceMetrics(
    SegmentExplainer& explainer, const std::vector<int>& ground_truth_cuts,
    int samples, uint64_t seed, int threads = 1);

/// Fractional ranking helper: rank[i] of values[i] ascending, ties get the
/// average of the ranks they span (e.g. values {3, 1, 3} -> {2.5, 1, 2.5}).
std::vector<double> FractionalRanks(const std::vector<double>& values);

/// Competition ("1224") ranking: ties share the best rank they span
/// (e.g. values {3, 1, 3} -> {2, 1, 2}; all-equal -> all 1).
std::vector<double> CompetitionRanks(const std::vector<double>& values);

}  // namespace tsexplain

#endif  // TSEXPLAIN_EVAL_METRIC_COMPARISON_H_
