// Within-segment variance var(P) (paper Eq. 7 and Eq. 10).
//
// Centroid-structured metrics (tse, dist1, dist2 and squared variants):
//   var(P) = (1/|P|) * sum over unit objects P_x of dist(P, P_x)
// where the centroid of a segment is the segment itself (section 4.1.2) and
// the objects are the size-two segments [p_x, p_{x+1}] it contains
// (section 4.1.1).
//
// All-pair metrics (allpair, Sallpair):
//   var(P) = average of dist(P_x, P_y) over all unordered object pairs.

#ifndef TSEXPLAIN_SEG_VARIANCE_H_
#define TSEXPLAIN_SEG_VARIANCE_H_

#include "src/seg/segment_distance.h"
#include "src/seg/segment_explainer.h"

namespace tsexplain {

/// Computes var(P) and |P|var(P) for segments of one time series under one
/// variance metric. Stateless apart from the underlying explainer cache;
/// cheap to construct.
class VarianceCalculator {
 public:
  VarianceCalculator(SegmentExplainer& explainer, VarianceMetric metric)
      : explainer_(explainer), metric_(metric) {}

  /// var(P) for segment [a, b] (a < b). A unit segment has variance 0
  /// under centroid metrics (its only object IS the centroid) and 0 under
  /// all-pair metrics (no pairs).
  double SegmentVariance(int a, int b);

  /// |P| * var(P) = (b - a) * var([a, b]): the DP's additive weight.
  double WeightedVariance(int a, int b);

  VarianceMetric metric() const { return metric_; }
  SegmentExplainer& explainer() { return explainer_; }

 private:
  SegmentExplainer& explainer_;
  VarianceMetric metric_;
};

/// Total objective of a segmentation scheme: sum over segments of
/// |P_i| var(P_i) (Problem 1). `cuts` are point indices, strictly
/// increasing, starting at 0 and ending at n-1.
double TotalObjective(VarianceCalculator& calc, const std::vector<int>& cuts);

}  // namespace tsexplain

#endif  // TSEXPLAIN_SEG_VARIANCE_H_
