#include "src/seg/kseg_dp.h"

#include <algorithm>

#include "src/common/check.h"

namespace tsexplain {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

KSegmentationDp::KSegmentationDp(const VarianceTable& table, int max_k)
    : table_(table), max_k_(max_k), m_(table.num_positions()) {
  TSE_CHECK_GE(max_k, 1);
  // Cap k at the number of available segments.
  max_k_ = std::min<int>(max_k_, static_cast<int>(m_) - 1);
  TSE_CHECK_GE(max_k_, 1);

  const size_t stride = static_cast<size_t>(max_k_) + 1;
  d_.assign(m_ * stride, kInf);
  parent_.assign(m_ * stride, -1);

  auto idx = [stride](size_t j, int k) {
    return j * stride + static_cast<size_t>(k);
  };

  // With a span cap only nearby predecessors can reach j; precompute the
  // smallest feasible predecessor index per j (two pointers) so the inner
  // loop is O(span window), not O(j).
  std::vector<size_t> min_pred(m_, 0);
  if (table_.max_span() >= 0) {
    const auto& pos = table_.positions();
    size_t lo = 0;
    for (size_t j = 0; j < m_; ++j) {
      while (pos[j] - pos[lo] > table_.max_span()) ++lo;
      min_pred[j] = lo;
    }
  }

  // Base: k = 1 means one segment [pos_0, pos_j].
  for (size_t j = 1; j < m_; ++j) {
    if (min_pred[j] > 0) continue;  // [pos_0, pos_j] exceeds the span cap
    d_[idx(j, 1)] = table_.WeightedVar(0, j);
    parent_[idx(j, 1)] = 0;
  }

  for (int k = 2; k <= max_k_; ++k) {
    for (size_t j = static_cast<size_t>(k); j < m_; ++j) {
      double best = kInf;
      int32_t best_parent = -1;
      // Enumerate the last cut j' (Eq. 11).
      const size_t jp_begin =
          std::max(min_pred[j], static_cast<size_t>(k - 1));
      for (size_t jp = jp_begin; jp < j; ++jp) {
        const double w = table_.WeightedVar(jp, j);
        if (w == kInf) continue;
        const double prev = d_[idx(jp, k - 1)];
        if (prev == kInf) continue;
        const double candidate = prev + w;
        if (candidate < best) {
          best = candidate;
          best_parent = static_cast<int32_t>(jp);
        }
      }
      d_[idx(j, k)] = best;
      parent_[idx(j, k)] = best_parent;
    }
  }
}

double KSegmentationDp::TotalVariance(int k) const {
  TSE_CHECK_GE(k, 1);
  if (k > max_k_) return kInf;
  return d_[(m_ - 1) * (static_cast<size_t>(max_k_) + 1) +
            static_cast<size_t>(k)];
}

bool KSegmentationDp::Feasible(int k) const {
  return TotalVariance(k) != kInf;
}

std::vector<double> KSegmentationDp::Curve() const {
  std::vector<double> curve(static_cast<size_t>(max_k_));
  for (int k = 1; k <= max_k_; ++k) {
    curve[static_cast<size_t>(k - 1)] = TotalVariance(k);
  }
  return curve;
}

Segmentation KSegmentationDp::Reconstruct(int k) const {
  TSE_CHECK(Feasible(k)) << "no feasible segmentation with k=" << k;
  const size_t stride = static_cast<size_t>(max_k_) + 1;
  Segmentation result;
  result.total_variance = TotalVariance(k);

  std::vector<size_t> indices;
  size_t j = m_ - 1;
  for (int level = k; level >= 1; --level) {
    indices.push_back(j);
    const int32_t p = parent_[j * stride + static_cast<size_t>(level)];
    TSE_CHECK_GE(p, 0);
    j = static_cast<size_t>(p);
  }
  TSE_CHECK_EQ(j, 0u);
  indices.push_back(0);
  std::reverse(indices.begin(), indices.end());

  result.cuts.reserve(indices.size());
  for (size_t index : indices) {
    result.cuts.push_back(table_.positions()[index]);
  }
  return result;
}

}  // namespace tsexplain
