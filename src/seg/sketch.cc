#include "src/seg/sketch.h"

#include <algorithm>
#include <numeric>

#include "src/common/check.h"
#include "src/seg/kseg_dp.h"
#include "src/seg/variance_table.h"

namespace tsexplain {

SketchParams DeriveSketchParams(int n, SketchParams requested) {
  TSE_CHECK_GE(n, 3);
  SketchParams params = requested;
  if (params.max_segment_len <= 0) {
    params.max_segment_len =
        std::max(1, std::min(static_cast<int>(0.05 * n), 20));
  }
  if (params.target_size <= 0) {
    params.target_size = 3 * n / params.max_segment_len;
  }
  // Feasibility: K segments of length <= L must cover n-1 unit objects,
  // and K cannot exceed n-1 segments.
  params.target_size = std::min(params.target_size, n - 1);
  while (static_cast<long long>(params.target_size) *
             params.max_segment_len <
         n - 1) {
    ++params.max_segment_len;
  }
  return params;
}

SketchResult SelectSketch(VarianceCalculator& calc, SketchParams requested) {
  const int n = calc.explainer().n();
  const SketchParams params = DeriveSketchParams(n, requested);

  SketchResult result;
  result.max_segment_len = params.max_segment_len;
  result.target_size = params.target_size;

  if (params.target_size >= n - 1) {
    // Degenerate: the sketch is all points.
    result.positions.resize(static_cast<size_t>(n));
    std::iota(result.positions.begin(), result.positions.end(), 0);
    return result;
  }

  // Phase I: length-constrained pipeline over all points.
  std::vector<int> all_positions(static_cast<size_t>(n));
  std::iota(all_positions.begin(), all_positions.end(), 0);
  const VarianceTable table =
      VarianceTable::Compute(calc, all_positions, params.max_segment_len);
  KSegmentationDp dp(table, params.target_size);

  // Ask for exactly |S| segments; fall back to the largest feasible K
  // (short series with a tight cap may not support |S| exactly).
  int k = std::min(params.target_size, dp.max_k());
  while (k > 1 && !dp.Feasible(k)) --k;
  TSE_CHECK(dp.Feasible(k)) << "phase I infeasible even at k=" << k;
  Segmentation seg = dp.Reconstruct(k);

  result.positions = std::move(seg.cuts);  // includes 0 and n-1
  return result;
}

}  // namespace tsexplain
