// NDCG-based "how well does E*_m(P_j) explain P_i" (paper section 4.1.3).
//
// The segment P_i plays the role of the query, the ranked explanation list
// E*_m(P_j) the retrieved documents, and the rectified relevance
//   gamma-bar(E^r_j, P_i) = gamma(E^r_j, P_i) * 1[tau(E^r_j, P_j) ==
//                                                tau(E^r_j, P_i)]
// (Table 2) zeroes out explanations whose change effect flips between the
// two segments. DCG discounts by log2(rank + 1) (Eq. 3); the ideal DCG is
// P_i explained by its own list (Eq. 4, no rectification applies); NDCG is
// their ratio (Eq. 5), clamped into [0, 1].

#ifndef TSEXPLAIN_SEG_NDCG_H_
#define TSEXPLAIN_SEG_NDCG_H_

#include <vector>

#include "src/seg/segment_explainer.h"

namespace tsexplain {

/// DCG of a ranked list of rectified relevances (Eq. 3): relevance[r] is
/// gamma-bar of the rank-(r+1) explanation.
double Dcg(const std::vector<double>& rectified_relevance);

/// Ideal DCG threshold below which a segment is considered unexplainable
/// (totally flat); such segments define NDCG = 1 (see DESIGN.md).
inline constexpr double kIdcgEps = 1e-12;

/// NDCG(P_target, E*_m(P_source)): how well the source segment's top
/// explanations explain the target segment. Both segments are [a, b] index
/// pairs into the explainer's time domain. Result is in [0, 1].
double NdcgExplains(SegmentExplainer& explainer, int target_a, int target_b,
                    int source_a, int source_b);

/// Same computation with the two cached explanation lists already in hand
/// (hot path for the distance library: avoids repeated cache lookups and
/// reuses the precomputed ideal DCG).
double NdcgFromTops(SegmentExplainer& explainer,
                    const TopExplanations& target_top, int target_a,
                    int target_b, const TopExplanations& source_top,
                    int source_a, int source_b);

}  // namespace tsexplain

#endif  // TSEXPLAIN_SEG_NDCG_H_
