#include "src/seg/variance.h"

#include "src/common/check.h"

namespace tsexplain {

double VarianceCalculator::SegmentVariance(int a, int b) {
  TSE_CHECK_LT(a, b);
  const int len = b - a;
  if (len == 1) return 0.0;

  if (IsAllPairMetric(metric_)) {
    // Eq. 10: average pairwise distance between unit objects.
    double sum = 0.0;
    int pairs = 0;
    for (int x = a; x < b; ++x) {
      for (int y = x + 1; y < b; ++y) {
        sum += SegmentDist(explainer_, metric_, x, x + 1, y, y + 1);
        ++pairs;
      }
    }
    return pairs == 0 ? 0.0 : sum / pairs;
  }

  // Eq. 7: average distance from each unit object to the centroid [a, b].
  double sum = 0.0;
  for (int x = a; x < b; ++x) {
    sum += SegmentDist(explainer_, metric_, a, b, x, x + 1);
  }
  return sum / len;
}

double VarianceCalculator::WeightedVariance(int a, int b) {
  return static_cast<double>(b - a) * SegmentVariance(a, b);
}

double TotalObjective(VarianceCalculator& calc,
                      const std::vector<int>& cuts) {
  TSE_CHECK_GE(cuts.size(), 2u);
  TSE_CHECK_EQ(cuts.front(), 0);
  double total = 0.0;
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    TSE_CHECK_LT(cuts[i], cuts[i + 1]);
    total += calc.WeightedVariance(cuts[i], cuts[i + 1]);
  }
  return total;
}

}  // namespace tsexplain
