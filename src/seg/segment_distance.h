// Explanation-based distance between two segments (paper Eq. 6, 8, 9) and
// the variance-metric taxonomy of section 4.2.2.
//
// Eight within-segment variance designs are evaluated in the paper:
//   tse      dist = 1 - (NDCG(Pi, E(Pj)) + NDCG(Pj, E(Pi))) / 2   (Eq. 6)
//   dist1    dist = 1 - NDCG(Pi, E(Pj))                            (Eq. 8)
//   dist2    dist = 1 - NDCG(Pj, E(Pi))                            (Eq. 9)
//   allpair  variance averages tse-dist over all object pairs      (Eq. 10)
//   Stse / Sdist1 / Sdist2 / Sallpair: the second term of the distance is
//   replaced by its l2-norm counterpart (quadratic mean of the two NDCGs
//   for tse/allpair, squared NDCG for dist1/dist2) -- see DESIGN.md for
//   this documented interpretation of the paper's one-line description.
//
// In centroid-structured variances the first argument is the centroid and
// the second the object, matching the paper's wording for dist1/dist2.

#ifndef TSEXPLAIN_SEG_SEGMENT_DISTANCE_H_
#define TSEXPLAIN_SEG_SEGMENT_DISTANCE_H_

#include "src/seg/ndcg.h"
#include "src/seg/segment_explainer.h"

namespace tsexplain {

/// The eight variance designs of section 4.2.2.
enum class VarianceMetric {
  kTse,
  kDist1,
  kDist2,
  kAllpair,
  kStse,
  kSdist1,
  kSdist2,
  kSallpair,
};

/// All eight metrics in the paper's listing order (used by Fig. 6).
inline constexpr VarianceMetric kAllVarianceMetrics[] = {
    VarianceMetric::kTse,   VarianceMetric::kDist1,
    VarianceMetric::kDist2, VarianceMetric::kAllpair,
    VarianceMetric::kStse,  VarianceMetric::kSdist1,
    VarianceMetric::kSdist2, VarianceMetric::kSallpair,
};

/// Human-readable metric name ("tse", "Sdist1", ...).
const char* VarianceMetricName(VarianceMetric metric);

/// Whether the variance structure compares all object pairs instead of
/// centroid-vs-object.
bool IsAllPairMetric(VarianceMetric metric);

/// Whether the NDCG term is replaced by its l2-norm counterpart.
bool IsSquaredMetric(VarianceMetric metric);

/// dist(centroid, object) in [0, 1] under `metric` (the allpair structures
/// reuse the tse/Stse pairwise distance).
double SegmentDist(SegmentExplainer& explainer, VarianceMetric metric,
                   int centroid_a, int centroid_b, int object_a,
                   int object_b);

/// Hot-path variant with both cached explanation lists already in hand
/// (the variance table hoists the lookups out of its inner loops).
double SegmentDistFromTops(SegmentExplainer& explainer, VarianceMetric metric,
                           const TopExplanations& centroid_top,
                           int centroid_a, int centroid_b,
                           const TopExplanations& object_top, int object_a,
                           int object_b);

}  // namespace tsexplain

#endif  // TSEXPLAIN_SEG_SEGMENT_DISTANCE_H_
