#include "src/seg/variance_table.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/thread_pool.h"

namespace tsexplain {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Number of j > i with positions[j] - positions[i] <= max_span (the row
// length the span cap permits); all of them when max_span < 0.
size_t SpanCappedRowLength(const std::vector<int>& positions, size_t i,
                           int max_span) {
  if (max_span < 0) return positions.size() - i - 1;
  const auto begin = positions.begin() + static_cast<ptrdiff_t>(i) + 1;
  return static_cast<size_t>(
      std::upper_bound(begin, positions.end(), positions[i] + max_span) -
      begin);
}

// All-pair (Eq. 10) entries for one start index, using precomputed object
// pair distances: S(a, b) accumulates via S(a, b-1) + sum of column b-1
// over rows a..b-2, itself accumulated in `col`, which the caller maintains
// as C2[a][c] = sum_{x=a..c-1} D[x][c].
void FillAllPairRow(const std::vector<std::vector<double>>& col_sums,
                    const std::vector<int>& positions, int max_span,
                    size_t a, std::vector<double>* row) {
  const size_t m = positions.size();
  row->reserve(SpanCappedRowLength(positions, a, max_span));
  double pair_sum = 0.0;
  for (size_t b = a + 1; b < m; ++b) {
    if (max_span >= 0 && positions[b] - positions[a] > max_span) break;
    // Objects inside [a, b): x = a .. b-1 -> count = b - a.
    if (b > a + 1) pair_sum += col_sums[a][b - 1];
    const size_t objects = b - a;
    const double pairs =
        static_cast<double>(objects) * static_cast<double>(objects - 1) /
        2.0;
    const double var = pairs == 0.0 ? 0.0 : pair_sum / pairs;
    row->push_back(static_cast<double>(positions[b] - positions[a]) * var);
  }
}

}  // namespace

VarianceTable VarianceTable::Compute(VarianceCalculator& calc,
                                     const std::vector<int>& positions,
                                     int max_span, int threads) {
  TSE_CHECK_GE(threads, 1);
  TSE_CHECK_GE(positions.size(), 2u);
  TSE_CHECK_EQ(positions.front(), 0);
  for (size_t i = 1; i < positions.size(); ++i) {
    TSE_CHECK_LT(positions[i - 1], positions[i]);
  }
  TSE_CHECK_EQ(positions.back(), calc.explainer().n() - 1);

  VarianceTable table;
  table.positions_ = positions;
  table.max_span_ = max_span;
  const size_t m = positions.size();
  table.rows_.resize(m);

  SegmentExplainer& explainer = calc.explainer();
  const VarianceMetric metric = calc.metric();

  if (IsAllPairMetric(metric)) {
    // Eq. 10 over the coarse objects. Materialize the object-pair distance
    // matrix once (O(M^2) distances) and roll prefix sums so every (i, j)
    // entry is O(1) instead of O(len^2). Memory is O(M^2); all-pair
    // metrics are only used on the Figure 6 scale (n ~ 100-400).
    const size_t num_objects = m - 1;
    // Pre-warm every object's explanation list across the shared pool,
    // then pin the cached pointers so the matrix fill never touches the
    // explainer's cache. Each distance is computed exactly once either
    // way, so ca_invocations and the distances stay bit-identical to the
    // serial order.
    if (threads > 1) {
      std::vector<std::pair<int, int>> segments;
      segments.reserve(num_objects);
      for (size_t x = 0; x < num_objects; ++x) {
        segments.emplace_back(positions[x], positions[x + 1]);
      }
      explainer.Prewarm(segments, threads);
    }
    std::vector<const TopExplanations*> object_tops(num_objects);
    for (size_t x = 0; x < num_objects; ++x) {
      object_tops[x] = &explainer.TopFor(positions[x], positions[x + 1]);
    }
    std::vector<std::vector<double>> pair_dist(
        num_objects, std::vector<double>(num_objects, 0.0));
    // Each row writes only pair_dist[x], so rows fan out across threads
    // (the NDCG evaluation is the dominant cost at Figure 6 scale).
    auto fill_dist_row = [&](size_t x) {
      for (size_t y = x + 1; y < num_objects; ++y) {
        pair_dist[x][y] = SegmentDistFromTops(
            explainer, metric, *object_tops[x], positions[x],
            positions[x + 1], *object_tops[y], positions[y],
            positions[y + 1]);
      }
    };
    if (threads <= 1 || num_objects < 16) {
      for (size_t x = 0; x < num_objects; ++x) fill_dist_row(x);
    } else {
      ThreadPool::Shared().ParallelFor(num_objects, threads, fill_dist_row);
    }
    // col_sums[a][c] = sum_{x=a..c-1} pair_dist[x][c]; built bottom-up in a.
    std::vector<std::vector<double>> col_sums(
        num_objects, std::vector<double>(num_objects, 0.0));
    for (size_t a = num_objects; a-- > 0;) {
      for (size_t c = a + 1; c < num_objects; ++c) {
        col_sums[a][c] =
            (a + 1 < num_objects ? col_sums[a + 1][c] : 0.0) +
            pair_dist[a][c];
      }
    }
    for (size_t i = 0; i + 1 < m; ++i) {
      FillAllPairRow(col_sums, positions, max_span, i, &table.rows_[i]);
    }
    return table;
  }

  // Concurrent CA fan-out: the dominant cost here is the O(M^2/2) centroid
  // (plus O(n) unit) TopFor computations. The explainer is reentrant with a
  // single-flight cache, so gather every distinct segment the fill loops
  // will need and pre-warm them across the shared pool. Deduplication keeps
  // each segment computed exactly once, so ca_invocations and all results
  // are bit-identical to the serial order.
  const int n = explainer.n();
  if (threads > 1) {
    std::vector<std::pair<int, int>> segments;
    segments.reserve(static_cast<size_t>(n - 1) + m * m / 2);
    for (int x = 0; x + 1 < n; ++x) segments.emplace_back(x, x + 1);
    for (size_t i = 0; i + 1 < m; ++i) {
      const int a = positions[i];
      for (size_t j = i + 1; j < m; ++j) {
        const int b = positions[j];
        if (max_span >= 0 && b - a > max_span) break;
        if (b - a > 1) segments.emplace_back(a, b);  // units already listed
      }
    }
    std::sort(segments.begin(), segments.end());
    segments.erase(std::unique(segments.begin(), segments.end()),
                   segments.end());
    explainer.Prewarm(segments, threads);
  }

  // Pre-resolve every unit object's explanation list once; the inner loops
  // below then never touch the explainer's cache for objects. (Pointers
  // into the cache stay valid until ClearCache.)
  std::vector<const TopExplanations*> unit_tops(
      static_cast<size_t>(n - 1));
  for (int x = 0; x + 1 < n; ++x) {
    unit_tops[static_cast<size_t>(x)] = &explainer.TopFor(x, x + 1);
  }
  // Pin every centroid's list too (pure cache hits after the pre-warm).
  std::vector<std::vector<const TopExplanations*>> centroid_tops(m);
  for (size_t i = 0; i + 1 < m; ++i) {
    const int a = positions[i];
    centroid_tops[i].reserve(SpanCappedRowLength(positions, i, max_span));
    for (size_t j = i + 1; j < m; ++j) {
      const int b = positions[j];
      if (max_span >= 0 && b - a > max_span) break;
      centroid_tops[i].push_back(&explainer.TopFor(a, b));
    }
  }

  // Fill rows; everything below only READS the cube and the cached lists,
  // so rows can fan out across threads.
  auto fill_row = [&](size_t i) {
    const int a = positions[i];
    table.rows_[i].reserve(centroid_tops[i].size());
    for (size_t offset = 0; offset < centroid_tops[i].size(); ++offset) {
      const size_t j = i + 1 + offset;
      const int b = positions[j];
      // Eq. 7 with the segment itself as centroid and the FINE unit
      // segments as objects, regardless of the candidate granularity.
      const TopExplanations& centroid_top = *centroid_tops[i][offset];
      double sum = 0.0;
      for (int x = a; x < b; ++x) {
        sum += SegmentDistFromTops(explainer, metric, centroid_top, a, b,
                                   *unit_tops[static_cast<size_t>(x)], x,
                                   x + 1);
      }
      const double var = sum / static_cast<double>(b - a);
      table.rows_[i].push_back(static_cast<double>(b - a) * var);
    }
  };

  if (threads <= 1 || m < 16) {
    for (size_t i = 0; i + 1 < m; ++i) fill_row(i);
    return table;
  }
  // Fan the row fill out over the shared pool instead of spawning fresh
  // threads per run: each row writes only its own table.rows_[i] slot, so
  // assignment order is irrelevant and the result stays bit-identical to
  // the sequential fill (tests/test_pipeline_determinism.cc).
  ThreadPool::Shared().ParallelFor(m - 1, threads, fill_row);
  return table;
}

double VarianceTable::WeightedVar(size_t i, size_t j) const {
  TSE_CHECK_LT(i, j);
  TSE_CHECK_LT(j, positions_.size());
  const size_t offset = j - i - 1;
  if (offset >= rows_[i].size()) return kInf;
  return rows_[i][offset];
}

size_t VarianceTable::MaxReachable(size_t i) const {
  TSE_CHECK_LT(i, positions_.size());
  return i + rows_[i].size();
}

}  // namespace tsexplain
