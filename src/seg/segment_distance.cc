#include "src/seg/segment_distance.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace tsexplain {

const char* VarianceMetricName(VarianceMetric metric) {
  switch (metric) {
    case VarianceMetric::kTse:
      return "tse";
    case VarianceMetric::kDist1:
      return "dist1";
    case VarianceMetric::kDist2:
      return "dist2";
    case VarianceMetric::kAllpair:
      return "allpair";
    case VarianceMetric::kStse:
      return "Stse";
    case VarianceMetric::kSdist1:
      return "Sdist1";
    case VarianceMetric::kSdist2:
      return "Sdist2";
    case VarianceMetric::kSallpair:
      return "Sallpair";
  }
  TSE_CHECK(false) << "unknown metric";
  return "";
}

bool IsAllPairMetric(VarianceMetric metric) {
  return metric == VarianceMetric::kAllpair ||
         metric == VarianceMetric::kSallpair;
}

bool IsSquaredMetric(VarianceMetric metric) {
  switch (metric) {
    case VarianceMetric::kStse:
    case VarianceMetric::kSdist1:
    case VarianceMetric::kSdist2:
    case VarianceMetric::kSallpair:
      return true;
    default:
      return false;
  }
}

double SegmentDist(SegmentExplainer& explainer, VarianceMetric metric,
                   int centroid_a, int centroid_b, int object_a,
                   int object_b) {
  const TopExplanations& centroid_top =
      explainer.TopFor(centroid_a, centroid_b);
  const TopExplanations& object_top = explainer.TopFor(object_a, object_b);
  return SegmentDistFromTops(explainer, metric, centroid_top, centroid_a,
                             centroid_b, object_top, object_a, object_b);
}

double SegmentDistFromTops(SegmentExplainer& explainer, VarianceMetric metric,
                           const TopExplanations& centroid_top,
                           int centroid_a, int centroid_b,
                           const TopExplanations& object_top, int object_a,
                           int object_b) {
  const bool squared = IsSquaredMetric(metric);
  switch (metric) {
    case VarianceMetric::kTse:
    case VarianceMetric::kAllpair:
    case VarianceMetric::kStse:
    case VarianceMetric::kSallpair: {
      const double n1 =
          NdcgFromTops(explainer, centroid_top, centroid_a, centroid_b,
                       object_top, object_a, object_b);
      const double n2 =
          NdcgFromTops(explainer, object_top, object_a, object_b,
                       centroid_top, centroid_a, centroid_b);
      const double similarity =
          squared ? std::sqrt((n1 * n1 + n2 * n2) / 2.0) : (n1 + n2) / 2.0;
      return std::clamp(1.0 - similarity, 0.0, 1.0);
    }
    case VarianceMetric::kDist1:
    case VarianceMetric::kSdist1: {
      // How well the object's explanations explain the centroid (Eq. 8).
      const double n1 =
          NdcgFromTops(explainer, centroid_top, centroid_a, centroid_b,
                       object_top, object_a, object_b);
      return std::clamp(1.0 - (squared ? n1 * n1 : n1), 0.0, 1.0);
    }
    case VarianceMetric::kDist2:
    case VarianceMetric::kSdist2: {
      // How well the centroid's explanations explain the object (Eq. 9).
      const double n2 =
          NdcgFromTops(explainer, object_top, object_a, object_b,
                       centroid_top, centroid_a, centroid_b);
      return std::clamp(1.0 - (squared ? n2 * n2 : n2), 0.0, 1.0);
    }
  }
  TSE_CHECK(false) << "unknown metric";
  return 0.0;
}

}  // namespace tsexplain
