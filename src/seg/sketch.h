// Sketching optimization (O2, paper section 5.3.2).
//
// Phase I (sketch selection): run the K-Segmentation pipeline over all n
// points but constrain every segment's length to L = min(0.05 n, 20) and
// ask for K = |S| = 3n / L segments. The resulting cut points (plus the two
// endpoints) are the sketch: points that the constrained, cheap pipeline
// already considers promising cut locations.
//
// Phase II: run the full pipeline with the sketch as the candidate-position
// set (see VarianceTable), reducing every module from O(n^2)/O(n^3) to
// O(|S|^2)/~O(|S|^3).

#ifndef TSEXPLAIN_SEG_SKETCH_H_
#define TSEXPLAIN_SEG_SKETCH_H_

#include <vector>

#include "src/seg/variance.h"

namespace tsexplain {

struct SketchParams {
  /// Maximum phase-I segment length L; <= 0 derives min(0.05 n, 20).
  int max_segment_len = 0;
  /// Target sketch size |S|; <= 0 derives 3n / L.
  int target_size = 0;
};

struct SketchResult {
  /// Sorted sketch positions including 0 and n-1.
  std::vector<int> positions;
  /// Parameters actually used.
  int max_segment_len = 0;
  int target_size = 0;
};

/// Derives the effective (L, |S|) for a series of n points per the paper's
/// empirical settings, clamped to feasibility (K*L >= n-1, K <= n-1).
SketchParams DeriveSketchParams(int n, SketchParams requested = {});

/// Phase I: selects the sketch using the constrained pipeline. `calc`
/// carries the variance metric and the (cached) segment explainer. When the
/// derived |S| >= n-1 the sketch degenerates to all points (vanilla).
SketchResult SelectSketch(VarianceCalculator& calc,
                          SketchParams requested = {});

}  // namespace tsexplain

#endif  // TSEXPLAIN_SEG_SKETCH_H_
