// Dynamic program for K-Segmentation (paper Eq. 11).
//
//   D(j, k) = min over j' of [ D(j', k-1) + |P_k| var(P_k) ],
//   P_k = [p_j', p_j]
//
// The DP runs over a candidate-position space (see VarianceTable) and
// computes D(n, k) for EVERY k up to max_k in one pass, which is exactly
// what the elbow method needs for free (paper section 6).

#ifndef TSEXPLAIN_SEG_KSEG_DP_H_
#define TSEXPLAIN_SEG_KSEG_DP_H_

#include <vector>

#include "src/seg/variance_table.h"

namespace tsexplain {

/// A segmentation scheme: cut positions in original point indices,
/// including both endpoints (so K segments yield K+1 entries), plus its
/// total objective value.
struct Segmentation {
  std::vector<int> cuts;
  double total_variance = 0.0;

  int num_segments() const { return static_cast<int>(cuts.size()) - 1; }
};

class KSegmentationDp {
 public:
  /// Solves the DP for k = 1..max_k over the table's candidate positions.
  KSegmentationDp(const VarianceTable& table, int max_k);

  int max_k() const { return max_k_; }

  /// D(n, k): minimal total weighted variance with exactly k segments;
  /// +infinity when infeasible (e.g. k exceeds candidate count, or the
  /// span cap makes full coverage impossible).
  double TotalVariance(int k) const;

  /// Whether exactly k segments can cover the series.
  bool Feasible(int k) const;

  /// The K-variance curve for k = 1..max_k (index 0 <-> k = 1), with
  /// infeasible entries at +infinity. Input to the elbow selector.
  std::vector<double> Curve() const;

  /// Optimal segmentation with exactly k segments. Requires Feasible(k).
  Segmentation Reconstruct(int k) const;

 private:
  const VarianceTable& table_;
  int max_k_;
  size_t m_;  // number of candidate positions
  // d_[j * (max_k_+1) + k], parent_ holds the previous candidate index.
  std::vector<double> d_;
  std::vector<int32_t> parent_;
};

}  // namespace tsexplain

#endif  // TSEXPLAIN_SEG_KSEG_DP_H_
