#include "src/seg/segment_explainer.h"

#include <cmath>

#include "src/common/check.h"
#include "src/common/thread_pool.h"
#include "src/common/timer.h"

namespace tsexplain {
namespace {

// Key is independent of n so cached entries stay valid when the cube grows
// (streaming extension appends buckets; old partials never change).
inline uint64_t SegmentKey(int a, int b) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(b));
}

// Shard selector: mix the key so consecutive segments spread across shards
// (a raw modulo would put all unit segments with the same low bits on one
// shard during the pre-warm fan-out).
inline size_t ShardFor(uint64_t key, size_t num_shards) {
  uint64_t h = key;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  return static_cast<size_t>(h) & (num_shards - 1);
}

}  // namespace

SegmentExplainer::SegmentExplainer(const ExplanationCube& cube,
                                   const ExplanationRegistry& registry,
                                   Options options)
    : cube_(cube),
      registry_(registry),
      options_(options),
      shards_(kNumShards) {
  static_assert((kNumShards & (kNumShards - 1)) == 0,
                "shard count must be a power of two");
  TSE_CHECK_GE(options_.m, 1);
  if (options_.active != nullptr) {
    TSE_CHECK_EQ(options_.active->size(), registry.num_explanations());
  }
}

std::unique_ptr<SegmentExplainer::WorkerState>
SegmentExplainer::AcquireWorkerState() {
  {
    MutexLock lock(pool_mu_);
    if (!worker_pool_.empty()) {
      std::unique_ptr<WorkerState> state = std::move(worker_pool_.back());
      worker_pool_.pop_back();
      return state;
    }
  }
  auto state = std::make_unique<WorkerState>(registry_);
  state->gamma.assign(registry_.num_explanations(), 0.0);
  return state;
}

void SegmentExplainer::ReleaseWorkerState(
    std::unique_ptr<WorkerState> state) {
  MutexLock lock(pool_mu_);
  worker_pool_.push_back(std::move(state));
}

TopExplanations SegmentExplainer::ComputeTop(int a, int b) {
  std::unique_ptr<WorkerState> ws = AcquireWorkerState();
  double precompute_ms = 0.0;
  double cascading_ms = 0.0;
  {
    // Module (a): batch-fill gamma for every (active) candidate cell.
    ScopedTimer t(&precompute_ms);
    cube_.ScoreAll(options_.metric, static_cast<size_t>(a),
                   static_cast<size_t>(b), options_.active, &ws->gamma);
  }

  TopExplanations result;
  {
    // Module (b): Cascading Analysts (optionally guess-and-verify).
    ScopedTimer t(&cascading_ms);
    if (options_.use_guess_verify) {
      result = GuessVerifyTopM(ws->solver, ws->gamma, options_.m,
                               options_.active, options_.initial_guess);
    } else {
      result = ws->solver.TopM(ws->gamma, options_.m, options_.active);
    }
    // Cache the ideal DCG (Eq. 4) for the distance computations.
    result.idcg = 0.0;
    for (size_t r = 0; r < result.gammas.size(); ++r) {
      result.idcg +=
          result.gammas[r] / std::log2(static_cast<double>(r) + 2.0);
    }
  }
  ReleaseWorkerState(std::move(ws));
  {
    MutexLock lock(stats_mu_);
    timing_.precompute_ms += precompute_ms;
    timing_.cascading_ms += cascading_ms;
    ++ca_invocations_;
  }
  return result;
}

const TopExplanations& SegmentExplainer::TopFor(int a, int b) {
  TSE_CHECK_GE(a, 0);
  TSE_CHECK_LT(a, b);
  TSE_CHECK_LT(b, n());
  const uint64_t key = SegmentKey(a, b);
  CacheShard& shard = shards_[ShardFor(key, kNumShards)];
  CacheEntry* entry = nullptr;
  {
    MutexLock lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      entry = it->second.get();
      // Single-flight: another thread is computing this segment; wait for
      // it instead of redoing the CA work (keeps ca_invocations exact).
      while (!entry->ready) shard.cv.Wait(shard.mu);
      return entry->top;
    }
    auto owned = std::make_unique<CacheEntry>();
    entry = owned.get();
    shard.map.emplace(key, std::move(owned));
  }

  TopExplanations result = ComputeTop(a, b);
  {
    MutexLock lock(shard.mu);
    entry->top = std::move(result);
    entry->ready = true;
  }
  shard.cv.NotifyAll();
  return entry->top;
}

void SegmentExplainer::Prewarm(
    const std::vector<std::pair<int, int>>& segments, int threads) {
  if (segments.empty()) return;
  if (threads <= 1 || segments.size() == 1) {
    for (const auto& [a, b] : segments) TopFor(a, b);
    return;
  }
  ThreadPool::Shared().ParallelFor(
      segments.size(), threads,
      [this, &segments](size_t i) {
        TopFor(segments[i].first, segments[i].second);
      });
}

DiffScore SegmentExplainer::Score(ExplId e, int a, int b) const {
  if (options_.active != nullptr &&
      !(*options_.active)[static_cast<size_t>(e)]) {
    return DiffScore{};
  }
  return cube_.Score(options_.metric, e, static_cast<size_t>(a),
                     static_cast<size_t>(b));
}

void SegmentExplainer::ClearCache() {
  // Take each shard's lock: a racing TopFor must never observe a
  // half-cleared map (it previously iterated the shards unlocked, which
  // was a data race whenever the streaming pipeline cleared while a
  // background pre-warm was still draining).
  for (CacheShard& shard : shards_) {
    MutexLock lock(shard.mu);
    shard.map.clear();
  }
}

ExplainerTiming SegmentExplainer::timing() const {
  MutexLock lock(stats_mu_);
  return timing_;
}

size_t SegmentExplainer::cache_size() const {
  size_t total = 0;
  for (const CacheShard& shard : shards_) {
    MutexLock lock(shard.mu);
    total += shard.map.size();
  }
  return total;
}

size_t SegmentExplainer::ca_invocations() const {
  MutexLock lock(stats_mu_);
  return ca_invocations_;
}

}  // namespace tsexplain
