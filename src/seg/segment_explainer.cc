#include "src/seg/segment_explainer.h"

#include <cmath>

#include "src/common/check.h"
#include "src/common/timer.h"

namespace tsexplain {

SegmentExplainer::SegmentExplainer(const ExplanationCube& cube,
                                   const ExplanationRegistry& registry,
                                   Options options)
    : cube_(cube),
      registry_(registry),
      options_(options),
      solver_(registry),
      gamma_scratch_(registry.num_explanations(), 0.0) {
  TSE_CHECK_GE(options_.m, 1);
  if (options_.active != nullptr) {
    TSE_CHECK_EQ(options_.active->size(), registry.num_explanations());
  }
}

const TopExplanations& SegmentExplainer::TopFor(int a, int b) {
  TSE_CHECK_GE(a, 0);
  TSE_CHECK_LT(a, b);
  TSE_CHECK_LT(b, n());
  // Key is independent of n so cached entries stay valid when the cube
  // grows (streaming extension appends buckets; old partials never change).
  const uint64_t key =
      (static_cast<uint64_t>(a) << 32) | static_cast<uint64_t>(b);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  {
    // Module (a): fill gamma for every (active) candidate cell.
    ScopedTimer t(&timing_.precompute_ms);
    const size_t epsilon = registry_.num_explanations();
    for (size_t e = 0; e < epsilon; ++e) {
      if (options_.active != nullptr && !(*options_.active)[e]) {
        gamma_scratch_[e] = 0.0;
        continue;
      }
      gamma_scratch_[e] =
          cube_.Score(options_.metric, static_cast<ExplId>(e),
                      static_cast<size_t>(a), static_cast<size_t>(b))
              .gamma;
    }
  }

  TopExplanations result;
  {
    // Module (b): Cascading Analysts (optionally guess-and-verify).
    ScopedTimer t(&timing_.cascading_ms);
    ++ca_invocations_;
    if (options_.use_guess_verify) {
      result = GuessVerifyTopM(solver_, gamma_scratch_, options_.m,
                               options_.active, options_.initial_guess);
    } else {
      result = solver_.TopM(gamma_scratch_, options_.m, options_.active);
    }
    // Cache the ideal DCG (Eq. 4) for the distance computations.
    result.idcg = 0.0;
    for (size_t r = 0; r < result.gammas.size(); ++r) {
      result.idcg +=
          result.gammas[r] / std::log2(static_cast<double>(r) + 2.0);
    }
  }
  auto [inserted_it, inserted] = cache_.emplace(key, std::move(result));
  TSE_CHECK(inserted);
  return inserted_it->second;
}

DiffScore SegmentExplainer::Score(ExplId e, int a, int b) const {
  if (options_.active != nullptr &&
      !(*options_.active)[static_cast<size_t>(e)]) {
    return DiffScore{};
  }
  return cube_.Score(options_.metric, e, static_cast<size_t>(a),
                     static_cast<size_t>(b));
}

void SegmentExplainer::ClearCache() { cache_.clear(); }

}  // namespace tsexplain
