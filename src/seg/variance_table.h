// Precomputed weighted within-segment variances over a set of candidate
// cut positions.
//
// The table is generic over a sorted `positions` vector (always including
// the two endpoints of the series):
//  * Vanilla pipeline: positions = {0, 1, ..., n-1}; objects are the unit
//    segments [x, x+1] (paper section 4.1.1).
//  * Sketch phase I:   positions = all points but spans capped at L, so
//    only O(n*L) entries are materialized.
//  * Sketch phase II:  positions = the sketch. Candidate CUTS are sketch
//    points but the objects stay the fine unit segments, matching the
//    paper's module (c) complexity O(m |S|^2 n) and keeping the variance
//    semantics identical to vanilla (Table 7's <1% quality deltas depend
//    on this).
//
// Entry (i, j) stores |P| * var(P) for P = [positions[i], positions[j]],
// where var averages the distance from each unit object to the centroid P
// and the weight |P| = positions[j] - positions[i] is the object count.
// (All-pair metrics use the consecutive-position objects instead; they are
// only exercised at vanilla granularity, see Figure 6.)

#ifndef TSEXPLAIN_SEG_VARIANCE_TABLE_H_
#define TSEXPLAIN_SEG_VARIANCE_TABLE_H_

#include <limits>
#include <vector>

#include "src/seg/variance.h"

namespace tsexplain {

class VarianceTable {
 public:
  /// Computes all entries. `positions` must be sorted, unique, and span
  /// the series (front() == 0, back() == n-1). `max_span` restricts
  /// materialized segments to positions[j] - positions[i] <= max_span
  /// (-1 = unlimited). The distance/variance semantics (metric, m, filter)
  /// come from `calc`.
  ///
  /// `threads` > 1 parallelizes both metric families end to end: the
  /// distinct TopFor computations (O(M^2/2) centroids + O(n) units, or the
  /// M-1 coarse objects for all-pair metrics) are deduplicated and fanned
  /// out over the shared ThreadPool (the explainer is reentrant with a
  /// single-flight cache), then the distance fills -- pure reads of the
  /// cube and the cached lists -- fan out across rows on the same pool.
  /// Results (including ca_invocations) are bit-identical to the
  /// sequential fill.
  static VarianceTable Compute(VarianceCalculator& calc,
                               const std::vector<int>& positions,
                               int max_span = -1, int threads = 1);

  /// Number of candidate positions M.
  size_t num_positions() const { return positions_.size(); }
  const std::vector<int>& positions() const { return positions_; }
  int max_span() const { return max_span_; }

  /// |P|var(P) for the segment between candidate indices i < j; +infinity
  /// when the segment exceeds max_span (never materialized).
  double WeightedVar(size_t i, size_t j) const;

  /// Largest candidate index j reachable from i within max_span.
  size_t MaxReachable(size_t i) const;

 private:
  VarianceTable() = default;

  std::vector<int> positions_;
  int max_span_ = -1;
  // rows_[i][j - i - 1] = weighted var of [positions[i], positions[j]].
  std::vector<std::vector<double>> rows_;
};

}  // namespace tsexplain

#endif  // TSEXPLAIN_SEG_VARIANCE_TABLE_H_
