#include "src/seg/elbow.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/check.h"

namespace tsexplain {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Number of leading feasible (finite) entries.
size_t FeasibleLength(const std::vector<double>& curve) {
  size_t len = 0;
  while (len < curve.size() && curve[len] != kInf) ++len;
  return len;
}

}  // namespace

std::vector<double> KneedleDifferenceCurve(const std::vector<double>& curve) {
  const size_t len = FeasibleLength(curve);
  TSE_CHECK_GE(len, 1u);
  std::vector<double> diff(len, 0.0);
  if (len == 1) return diff;

  double lo = curve[0], hi = curve[0];
  for (size_t i = 0; i < len; ++i) {
    lo = std::min(lo, curve[i]);
    hi = std::max(hi, curve[i]);
  }
  const double range = hi - lo;
  for (size_t i = 0; i < len; ++i) {
    const double x = static_cast<double>(i) / static_cast<double>(len - 1);
    const double y = range <= 0.0 ? 0.0 : (curve[i] - lo) / range;
    diff[i] = (1.0 - y) - x;  // flipped curve minus the diagonal
  }
  return diff;
}

int SelectElbowK(const std::vector<double>& curve) {
  TSE_CHECK(!curve.empty());
  const std::vector<double> diff = KneedleDifferenceCurve(curve);
  size_t best = 0;
  for (size_t i = 1; i < diff.size(); ++i) {
    if (diff[i] > diff[best]) best = i;
  }
  return static_cast<int>(best) + 1;
}

}  // namespace tsexplain
