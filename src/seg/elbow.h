// Optimal selection of K via the elbow method (paper section 6).
//
// TSExplain collects D(n, K) for K = 1..20 (free by-products of the DP),
// normalizes the K-variance curve into the unit square, and picks the knee
// with the Kneedle criterion (Satopaa et al. [40]): flip the decreasing
// curve (y-hat = 1 - var-hat), form the difference curve d = y-hat - x-hat,
// and take K* = argmax d. The paper's shorthand "argmax[total_var(K) - K]"
// is this criterion up to the flip (see DESIGN.md).

#ifndef TSEXPLAIN_SEG_ELBOW_H_
#define TSEXPLAIN_SEG_ELBOW_H_

#include <vector>

namespace tsexplain {

/// User-perception cap on K (paper: "we constrain K to be at most 20").
inline constexpr int kMaxSegments = 20;

/// Selects the elbow K from a K-variance curve, where curve[k-1] is the
/// total variance at K = k. Infeasible entries (+infinity) are ignored;
/// they may only appear as a suffix... (length-capped curves) or prefix is
/// not expected. Returns K in [1, feasible_len]. A curve of length 1 or a
/// flat curve returns 1.
int SelectElbowK(const std::vector<double>& curve);

/// The normalized difference curve d(K) used by SelectElbowK (exposed for
/// tests and for the K-variance plots in the benches). d has one entry per
/// feasible K.
std::vector<double> KneedleDifferenceCurve(const std::vector<double>& curve);

}  // namespace tsexplain

#endif  // TSEXPLAIN_SEG_ELBOW_H_
