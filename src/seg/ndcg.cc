#include "src/seg/ndcg.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace tsexplain {

double Dcg(const std::vector<double>& rectified_relevance) {
  double dcg = 0.0;
  for (size_t r = 0; r < rectified_relevance.size(); ++r) {
    dcg += rectified_relevance[r] /
           std::log2(static_cast<double>(r) + 2.0);  // log2(rank + 1)
  }
  return dcg;
}

double NdcgFromTops(SegmentExplainer& explainer,
                    const TopExplanations& target_top, int target_a,
                    int target_b, const TopExplanations& source_top,
                    int source_a, int source_b) {
  // Ideal DCG: the target explained by its own ranked list (Eq. 4). The
  // rectifier is vacuous there (same segment on both sides).
  const double idcg = target_top.idcg;
  if (idcg <= kIdcgEps) return 1.0;  // flat target: trivially explained

  double dcg = 0.0;
  for (size_t r = 0; r < source_top.ids.size(); ++r) {
    const ExplId e = source_top.ids[r];
    const DiffScore on_target = explainer.Score(e, target_a, target_b);
    const DiffScore on_source = explainer.Score(e, source_a, source_b);
    // Rectified relevance (Table 2): zero when the change effect flips.
    const double rectified =
        on_target.tau == on_source.tau ? on_target.gamma : 0.0;
    dcg += rectified / std::log2(static_cast<double>(r) + 2.0);
  }
  return std::clamp(dcg / idcg, 0.0, 1.0);
}

double NdcgExplains(SegmentExplainer& explainer, int target_a, int target_b,
                    int source_a, int source_b) {
  const TopExplanations& target_top = explainer.TopFor(target_a, target_b);
  const TopExplanations& source_top = explainer.TopFor(source_a, source_b);
  return NdcgFromTops(explainer, target_top, target_a, target_b, source_top,
                      source_a, source_b);
}

}  // namespace tsexplain
