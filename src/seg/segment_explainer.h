// Cached per-segment top-explanation provider.
//
// Bridges modules (a) and (b) of the pipeline: for a segment [a, b] it
// fills the per-cell gamma vector from the cube (module (a), batched via
// ExplanationCube::ScoreAll) and runs the Cascading Analysts algorithm
// (module (b)), caching the result so every segment is explained at most
// once per query. The K-Segmentation module asks for the same segments
// repeatedly while computing distances and variances, so this cache is what
// makes the n^3 phase feasible.
//
// Concurrency: TopFor is REENTRANT. The cache is sharded (one mutex +
// condition variable per shard) with single-flight semantics -- concurrent
// requests for the same segment compute it exactly once, so instrumentation
// like ca_invocations() is deterministic at any thread count. Each in-flight
// computation checks a CascadingAnalysts solver + gamma scratch out of a
// small free pool (solvers are stateful; one is never shared between two
// concurrent computations). Returned references stay valid until
// ClearCache(), which must not run concurrently with TopFor.

#ifndef TSEXPLAIN_SEG_SEGMENT_EXPLAINER_H_
#define TSEXPLAIN_SEG_SEGMENT_EXPLAINER_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/mutex.h"
#include "src/cube/explanation_cube.h"
#include "src/diff/cascading_analysts.h"
#include "src/diff/guess_verify.h"

namespace tsexplain {

/// Wall-clock breakdown mirroring the paper's Figure 15 categories. Under a
/// concurrent pre-warm the buckets sum per-thread elapsed time (CPU-like,
/// may exceed wall clock).
struct ExplainerTiming {
  double precompute_ms = 0.0;  // module (a): gamma vector fills
  double cascading_ms = 0.0;   // module (b): CA / guess-and-verify
};

/// Computes and caches E*_m per segment. TopFor/Score are thread-safe;
/// ClearCache is not (quiesce callers first).
class SegmentExplainer {
 public:
  struct Options {
    int m = 3;                       // paper default
    DiffMetricKind metric = DiffMetricKind::kAbsoluteChange;
    bool use_guess_verify = false;   // O1
    int initial_guess = kDefaultInitialGuess;
    /// Support-filter mask (nullptr = no filter). Inactive cells score 0
    /// and are never selected. The pointed-to mask must outlive this
    /// object.
    const std::vector<bool>* active = nullptr;
  };

  SegmentExplainer(const ExplanationCube& cube,
                   const ExplanationRegistry& registry, Options options);

  /// Top-m non-overlapping explanations of segment [a, b] (0 <= a < b < n).
  /// The reference stays valid until ClearCache().
  const TopExplanations& TopFor(int a, int b);

  /// Computes (and caches) TopFor for every listed segment, fanning the
  /// cache misses out over the shared ThreadPool with up to `threads`
  /// workers. Segments should be unique (duplicates are safe but waste a
  /// queue slot). Results -- including ca_invocations() -- are bit-identical
  /// to calling TopFor serially in any order.
  void Prewarm(const std::vector<std::pair<int, int>>& segments, int threads);

  /// gamma/tau of one explanation on segment [a, b] (O(1) cube lookup,
  /// not cached). Respects the support filter.
  DiffScore Score(ExplId e, int a, int b) const;

  /// Resets the cache (used by the streaming pipeline when data changes).
  /// Takes each shard's lock, so it is data-race-free against concurrent
  /// TopFor — but references THOSE callers already hold become dangling,
  /// so callers must still quiesce before clearing (see class comment).
  void ClearCache();

  int n() const { return static_cast<int>(cube_.n()); }
  int m() const { return options_.m; }
  const ExplanationCube& cube() const { return cube_; }
  const ExplanationRegistry& registry() const { return registry_; }
  const Options& options() const { return options_; }

  ExplainerTiming timing() const;
  size_t cache_size() const;
  size_t ca_invocations() const;

 private:
  // One CA solver + gamma scratch, checked out for the duration of one
  // cache-miss computation. Pooled so repeated invocations do not allocate
  // and concurrent ones never share state.
  struct WorkerState {
    explicit WorkerState(const ExplanationRegistry& registry)
        : solver(registry) {}
    CascadingAnalysts solver;
    std::vector<double> gamma;
  };

  // Single-flight cache entry: `ready` flips under the shard mutex once
  // `top` is populated; waiters block on the shard condition variable. Held
  // by unique_ptr so references survive rehashing and concurrent inserts.
  struct CacheEntry {
    TopExplanations top;
    bool ready = false;
  };
  struct CacheShard {
    mutable Mutex mu;
    CondVar cv;
    std::unordered_map<uint64_t, std::unique_ptr<CacheEntry>> map
        TSE_GUARDED_BY(mu);
  };
  static constexpr size_t kNumShards = 64;  // power of two

  TopExplanations ComputeTop(int a, int b);
  std::unique_ptr<WorkerState> AcquireWorkerState();
  void ReleaseWorkerState(std::unique_ptr<WorkerState> state);

  const ExplanationCube& cube_;
  const ExplanationRegistry& registry_;
  Options options_;

  std::vector<CacheShard> shards_;  // sized kNumShards

  Mutex pool_mu_;
  std::vector<std::unique_ptr<WorkerState>> worker_pool_
      TSE_GUARDED_BY(pool_mu_);

  mutable Mutex stats_mu_;
  ExplainerTiming timing_ TSE_GUARDED_BY(stats_mu_);
  size_t ca_invocations_ TSE_GUARDED_BY(stats_mu_) = 0;
};

}  // namespace tsexplain

#endif  // TSEXPLAIN_SEG_SEGMENT_EXPLAINER_H_
