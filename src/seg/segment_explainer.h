// Cached per-segment top-explanation provider.
//
// Bridges modules (a) and (b) of the pipeline: for a segment [a, b] it
// fills the per-cell gamma vector from the cube (module (a)) and runs the
// Cascading Analysts algorithm (module (b)), caching the result so every
// segment is explained at most once per query. The K-Segmentation module
// asks for the same segments repeatedly while computing distances and
// variances, so this cache is what makes the n^3 phase feasible.

#ifndef TSEXPLAIN_SEG_SEGMENT_EXPLAINER_H_
#define TSEXPLAIN_SEG_SEGMENT_EXPLAINER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/cube/explanation_cube.h"
#include "src/diff/cascading_analysts.h"
#include "src/diff/guess_verify.h"

namespace tsexplain {

/// Wall-clock breakdown mirroring the paper's Figure 15 categories.
struct ExplainerTiming {
  double precompute_ms = 0.0;  // module (a): gamma vector fills
  double cascading_ms = 0.0;   // module (b): CA / guess-and-verify
};

/// Computes and caches E*_m per segment. Not thread-safe.
class SegmentExplainer {
 public:
  struct Options {
    int m = 3;                       // paper default
    DiffMetricKind metric = DiffMetricKind::kAbsoluteChange;
    bool use_guess_verify = false;   // O1
    int initial_guess = kDefaultInitialGuess;
    /// Support-filter mask (nullptr = no filter). Inactive cells score 0
    /// and are never selected. The pointed-to mask must outlive this
    /// object.
    const std::vector<bool>* active = nullptr;
  };

  SegmentExplainer(const ExplanationCube& cube,
                   const ExplanationRegistry& registry, Options options);

  /// Top-m non-overlapping explanations of segment [a, b] (0 <= a < b < n).
  /// The reference stays valid until ClearCache().
  const TopExplanations& TopFor(int a, int b);

  /// gamma/tau of one explanation on segment [a, b] (O(1) cube lookup,
  /// not cached). Respects the support filter.
  DiffScore Score(ExplId e, int a, int b) const;

  /// Resets the cache (used by the streaming pipeline when data changes).
  void ClearCache();

  int n() const { return static_cast<int>(cube_.n()); }
  int m() const { return options_.m; }
  const ExplanationCube& cube() const { return cube_; }
  const ExplanationRegistry& registry() const { return registry_; }
  const Options& options() const { return options_; }

  const ExplainerTiming& timing() const { return timing_; }
  size_t cache_size() const { return cache_.size(); }
  size_t ca_invocations() const { return ca_invocations_; }

 private:
  const ExplanationCube& cube_;
  const ExplanationRegistry& registry_;
  Options options_;
  CascadingAnalysts solver_;
  std::unordered_map<uint64_t, TopExplanations> cache_;
  std::vector<double> gamma_scratch_;
  ExplainerTiming timing_;
  size_t ca_invocations_ = 0;
};

}  // namespace tsexplain

#endif  // TSEXPLAIN_SEG_SEGMENT_EXPLAINER_H_
