#include "src/service/dataset_registry.h"

#include <atomic>
#include <utility>

#include "src/storage/table_snapshot.h"

namespace tsexplain {
namespace {

// Registration ids are process-unique, never reused: cache keys built
// from them cannot alias across drop + re-register of one name.
uint64_t NextDatasetUid() {
  static std::atomic<uint64_t> counter{0};
  return counter.fetch_add(1) + 1;
}

}  // namespace

bool DatasetRegistry::RegisterCsvFile(const std::string& name,
                                      const std::string& path,
                                      const CsvOptions& options,
                                      std::string* error,
                                      DatasetInfo* info) {
  CsvResult loaded = ReadCsvFile(path, options);
  if (!loaded.ok()) {
    *error = loaded.error;
    return false;
  }
  return RegisterTable(name, std::shared_ptr<const Table>(
                                 std::move(loaded.table)),
                       path, error, info);
}

bool DatasetRegistry::RegisterCsvText(const std::string& name,
                                      const std::string& text,
                                      const CsvOptions& options,
                                      std::string* error,
                                      DatasetInfo* info) {
  CsvResult loaded = ReadCsvFromString(text, options);
  if (!loaded.ok()) {
    *error = loaded.error;
    return false;
  }
  return RegisterTable(name, std::shared_ptr<const Table>(
                                 std::move(loaded.table)),
                       "<inline>", error, info);
}

bool DatasetRegistry::RegisterSnapshotFile(const std::string& name,
                                           const std::string& path,
                                           std::string* error,
                                           DatasetInfo* info) {
  // Zero-copy open: columns borrow the mapping (owned fallback inside),
  // and the fingerprint comes from the v2 header — registering a snapshot
  // never re-serializes the table.
  storage::TableSnapshotResult loaded = storage::OpenTableSnapshot(path);
  if (!loaded.ok()) {
    *error = loaded.status.ToString();
    return false;
  }
  return RegisterTableWithFingerprint(
      name, std::shared_ptr<const Table>(std::move(loaded.table)), path,
      loaded.fingerprint, error, info);
}

bool DatasetRegistry::RegisterTable(const std::string& name,
                                    std::shared_ptr<const Table> table,
                                    const std::string& source,
                                    std::string* error,
                                    DatasetInfo* info) {
  if (!table) {
    *error = "dataset table must not be null";
    return false;
  }
  // The one full-table hash of this registration; every later consumer
  // (session attach, cache fencing) reads the cached value.
  const uint64_t fingerprint = storage::TableFingerprint(*table);
  return RegisterTableWithFingerprint(name, std::move(table), source,
                                      fingerprint, error, info);
}

bool DatasetRegistry::RegisterTableWithFingerprint(
    const std::string& name, std::shared_ptr<const Table> table,
    const std::string& source, uint64_t fingerprint, std::string* error,
    DatasetInfo* info) {
  if (name.empty()) {
    *error = "dataset name must not be empty";
    return false;
  }
  if (!table) {
    *error = "dataset table must not be null";
    return false;
  }
  if (info) {
    info->name = name;
    info->source = source;
    info->rows = table->num_rows();
    info->time_buckets = table->num_time_buckets();
    info->dimensions = table->schema().dimension_names();
    info->measures = table->schema().measure_names();
    info->hot_engines = 0;
    info->fingerprint = fingerprint;
  }
  auto dataset = std::make_shared<Dataset>();
  dataset->table = std::move(table);
  dataset->uid = NextDatasetUid();
  dataset->fingerprint = fingerprint;
  dataset->source = source;
  MutexLock lock(mu_);
  const auto inserted = datasets_.emplace(name, std::move(dataset));
  if (!inserted.second) {
    *error = "dataset already registered: " + name;
    return false;
  }
  return true;
}

std::shared_ptr<const Table> DatasetRegistry::Get(
    const std::string& name) const {
  return GetRef(name).table;
}

DatasetRegistry::TableRef DatasetRegistry::GetRef(
    const std::string& name) const {
  MutexLock lock(mu_);
  const auto it = datasets_.find(name);
  if (it == datasets_.end()) return {};
  return TableRef{it->second->table, it->second->uid,
                  it->second->fingerprint};
}

bool DatasetRegistry::Drop(const std::string& name) {
  MutexLock lock(mu_);
  return datasets_.erase(name) > 0;
}

std::vector<DatasetInfo> DatasetRegistry::List() const {
  // Snapshot under mu_, then inspect per-dataset state without it: a
  // cold engine build holds a dataset's engines_mu for seconds, and
  // waiting on it while holding the global mutex would stall every
  // Get() (i.e. every cache-hit query) behind one slow build.
  std::vector<std::pair<std::string, std::shared_ptr<Dataset>>> snapshot;
  {
    MutexLock lock(mu_);
    snapshot.assign(datasets_.begin(), datasets_.end());
  }
  std::vector<DatasetInfo> out;
  out.reserve(snapshot.size());
  for (const auto& [name, dataset] : snapshot) {
    DatasetInfo info;
    info.name = name;
    info.source = dataset->source;
    info.rows = dataset->table->num_rows();
    info.time_buckets = dataset->table->num_time_buckets();
    info.dimensions = dataset->table->schema().dimension_names();
    info.measures = dataset->table->schema().measure_names();
    info.fingerprint = dataset->fingerprint;
    {
      MutexLock engines_lock(*dataset->engines_mu);
      info.hot_engines = dataset->engines.size();
    }
    out.push_back(std::move(info));
  }
  return out;
}

EngineHandle DatasetRegistry::GetOrBuildEngine(const std::string& name,
                                               const std::string& engine_key,
                                               const TSExplainConfig& config,
                                               const Table* expected_table,
                                               std::string* error) {
  std::shared_ptr<Dataset> dataset;
  {
    MutexLock lock(mu_);
    const auto it = datasets_.find(name);
    if (it == datasets_.end()) {
      *error = "unknown dataset: " + name;
      return {};
    }
    dataset = it->second;
  }
  if (expected_table != nullptr &&
      dataset->table.get() != expected_table) {
    // The name was dropped and re-registered since the caller validated
    // its config; building against the new table could abort on a schema
    // the config was never checked against.
    *error = "dataset changed during query, retry: " + name;
    return {};
  }

  // Per-dataset lock: a concurrent request for the same NEW engine waits
  // for the first build instead of duplicating the cube; requests for an
  // EXISTING engine pay only a map lookup.
  MutexLock engines_lock(*dataset->engines_mu);
  auto it = dataset->engines.find(engine_key);
  if (it == dataset->engines.end()) {
    EngineEntry entry;
    entry.engine = std::make_shared<TSExplain>(*dataset->table, config);
    entry.run_mu = std::make_shared<Mutex>();
    it = dataset->engines.emplace(engine_key, std::move(entry)).first;
  }
  EngineHandle handle;
  handle.table = dataset->table;
  handle.engine = it->second.engine;
  handle.mu = it->second.run_mu;
  return handle;
}

size_t DatasetRegistry::NumEngines() const {
  // Same snapshot discipline as List(): never hold mu_ while waiting on
  // a dataset's engines_mu.
  std::vector<std::shared_ptr<Dataset>> snapshot;
  {
    MutexLock lock(mu_);
    snapshot.reserve(datasets_.size());
    for (const auto& [name, dataset] : datasets_) {
      (void)name;
      snapshot.push_back(dataset);
    }
  }
  size_t total = 0;
  for (const auto& dataset : snapshot) {
    MutexLock engines_lock(*dataset->engines_mu);
    total += dataset->engines.size();
  }
  return total;
}

}  // namespace tsexplain
