// Stuck-query watchdog: every request the protocol layer handles is
// stamped with a process-unique request id and its start time; Scan()
// reports the requests that have been in flight longer than the
// configured deadline and refreshes the `query.stuck` / `query.inflight`
// gauges, so a wedged compute shows up in `healthz`, the `metrics` op,
// and the metrics history — joinable with the slow-query log, the access
// log, and trace spans through the shared request id.
//
// The watchdog deliberately knows nothing about the engine: Begin/End
// bracket the protocol handler, and Scan() takes only the watchdog's own
// mutex — which is why `healthz` can read it even while every pool
// worker is stuck inside a cold compute.

#ifndef TSEXPLAIN_SERVICE_WATCHDOG_H_
#define TSEXPLAIN_SERVICE_WATCHDOG_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/mutex.h"

namespace tsexplain {

class QueryWatchdog {
 public:
  struct Options {
    /// Age at which an in-flight request counts as stuck. The engine has
    /// no cancellation: the watchdog SURFACES wedged queries (healthz
    /// flips to "stuck", the gauge goes nonzero), it never kills them.
    double stuck_after_ms = 10000.0;
  };

  QueryWatchdog();  // default Options (defined in the .cc: a default
                    // argument here would need Options complete too early)
  explicit QueryWatchdog(Options options);

  /// Registers request `request_id` (the protocol handler's monotone
  /// stamp) as in flight. `op` is kept for diagnostics.
  void Begin(uint64_t request_id, const std::string& op)
      TSE_EXCLUDES(mu_);
  void End(uint64_t request_id) TSE_EXCLUDES(mu_);

  struct StuckQuery {
    uint64_t request_id = 0;
    std::string op;
    double age_ms = 0.0;
  };
  struct Status {
    size_t inflight = 0;
    std::vector<StuckQuery> stuck;  // oldest first
  };

  /// Snapshot of the in-flight set, refreshing the gauges as a side
  /// effect (the metrics-history sampler prologue calls this every tick,
  /// so `query.stuck` is a live series).
  Status Scan() TSE_EXCLUDES(mu_);

  double stuck_after_ms() const { return options_.stuck_after_ms; }

 private:
  struct Inflight {
    std::string op;
    std::chrono::steady_clock::time_point start;
  };

  const Options options_;
  mutable Mutex mu_;
  std::map<uint64_t, Inflight> inflight_ TSE_GUARDED_BY(mu_);
};

}  // namespace tsexplain

#endif  // TSEXPLAIN_SERVICE_WATCHDOG_H_
