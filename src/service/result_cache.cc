#include "src/service/result_cache.h"

#include <algorithm>

#include "src/common/check.h"

namespace tsexplain {
namespace {

// FNV-1a: stable across platforms (std::hash<string> is not guaranteed to
// be), so shard placement is reproducible in tests.
size_t HashKey(const std::string& key) {
  uint64_t h = 1469598103934665603ull;
  for (char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return static_cast<size_t>(h);
}

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

size_t CachedResult::CostBytes() const {
  size_t cost = sizeof(CachedResult) + json.capacity();
  if (result) {
    cost += sizeof(TSExplainResult);
    cost += result->segmentation.cuts.capacity() * sizeof(int);
    cost += result->k_variance_curve.capacity() * sizeof(double);
    cost += result->sketch_positions.capacity() * sizeof(int);
    for (const SegmentExplanation& seg : result->segments) {
      cost += sizeof(SegmentExplanation);
      cost += seg.begin_label.capacity() + seg.end_label.capacity();
      for (const ExplanationItem& item : seg.top) {
        cost += sizeof(ExplanationItem) + item.description.capacity();
      }
    }
  }
  return cost;
}

ResultCache::ResultCache(size_t capacity_bytes, int num_shards) {
  TSE_CHECK_GE(num_shards, 1);
  const size_t shards = RoundUpPow2(static_cast<size_t>(num_shards));
  shard_mask_ = shards - 1;
  capacity_per_shard_ = std::max<size_t>(1, capacity_bytes / shards);
  shards_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  return *shards_[HashKey(key) & shard_mask_];
}

void ResultCache::InsertLocked(Shard& shard, const std::string& key,
                               const ValuePtr& value) {
  const size_t cost = value->CostBytes();
  if (cost > capacity_per_shard_) return;  // would evict everything: skip
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    // Raced with another insert of the same key (e.g. a flight finishing
    // right after an Invalidate + re-compute). Replace in place.
    shard.bytes_used -= it->second.cost;
    shard.lru.erase(it->second.lru_pos);
    shard.entries.erase(it);
  }
  shard.lru.push_front(key);
  Entry entry;
  entry.value = value;
  entry.cost = cost;
  entry.lru_pos = shard.lru.begin();
  shard.entries.emplace(key, std::move(entry));
  shard.bytes_used += cost;
  while (shard.bytes_used > capacity_per_shard_ && !shard.lru.empty()) {
    const std::string& victim = shard.lru.back();
    auto vit = shard.entries.find(victim);
    TSE_CHECK(vit != shard.entries.end());
    shard.bytes_used -= vit->second.cost;
    shard.entries.erase(vit);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

ResultCache::ValuePtr ResultCache::GetOrCompute(const std::string& key,
                                                const ComputeFn& compute,
                                                bool* was_hit) {
  Shard& shard = ShardFor(key);
  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      // Touch: move to the LRU front.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
      ++shard.hits;
      if (was_hit) *was_hit = true;
      return it->second.value;
    }
    auto fit = shard.inflight.find(key);
    if (fit != shard.inflight.end()) {
      flight = fit->second;
      ++shard.coalesced;
    } else {
      flight = std::make_shared<Flight>();
      flight->future = flight->promise.get_future().share();
      shard.inflight.emplace(key, flight);
      leader = true;
      ++shard.misses;
    }
  }

  if (!leader) {
    if (was_hit) *was_hit = true;  // another thread's work served us
    return flight->future.get();
  }

  if (was_hit) *was_hit = false;
  ValuePtr value = compute();  // outside the lock: may be seconds long
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.inflight.erase(key);
    if (value) InsertLocked(shard, key, value);
  }
  flight->promise.set_value(value);
  return value;
}

void ResultCache::Invalidate(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return;
  shard.bytes_used -= it->second.cost;
  shard.lru.erase(it->second.lru_pos);
  shard.entries.erase(it);
  ++shard.invalidations;
}

size_t ResultCache::InvalidatePrefix(const std::string& prefix) {
  size_t removed = 0;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.entries.begin(); it != shard.entries.end();) {
      if (it->first.compare(0, prefix.size(), prefix) == 0) {
        shard.bytes_used -= it->second.cost;
        shard.lru.erase(it->second.lru_pos);
        it = shard.entries.erase(it);
        ++shard.invalidations;
        ++removed;
      } else {
        ++it;
      }
    }
  }
  return removed;
}

ResultCache::Stats ResultCache::stats() const {
  Stats stats;
  stats.capacity_bytes = capacity_per_shard_ * shards_.size();
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.mu);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.coalesced += shard.coalesced;
    stats.evictions += shard.evictions;
    stats.invalidations += shard.invalidations;
    stats.entries += shard.entries.size();
    stats.bytes_used += shard.bytes_used;
  }
  return stats;
}

}  // namespace tsexplain
