#include "src/service/result_cache.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/metrics.h"

namespace tsexplain {
namespace {

// FNV-1a: stable across platforms (std::hash<string> is not guaranteed to
// be), so shard placement is reproducible in tests.
size_t HashKey(const std::string& key) {
  uint64_t h = 1469598103934665603ull;
  for (char c : key) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return static_cast<size_t>(h);
}

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

// Process-wide cache metrics (docs/OBSERVABILITY.md): per-shard counters
// roll up into one registry series per event. The per-shard size_t
// counters stay authoritative for stats(); these shadow them so the
// `metrics` op sees the same decisions without locking every shard.
struct CacheMetrics {
  Counter& hits = MetricRegistry::Global().GetCounter("cache.hits");
  Counter& misses = MetricRegistry::Global().GetCounter("cache.misses");
  Counter& coalesced =
      MetricRegistry::Global().GetCounter("cache.coalesced");
  Counter& evictions =
      MetricRegistry::Global().GetCounter("cache.evictions");
  Counter& budget_evictions =
      MetricRegistry::Global().GetCounter("cache.budget_evictions");
  Counter& invalidations =
      MetricRegistry::Global().GetCounter("cache.invalidations");
  Gauge& entries = MetricRegistry::Global().GetGauge("cache.entries");
  Gauge& bytes_used =
      MetricRegistry::Global().GetGauge("cache.bytes_used");
  static CacheMetrics& Get() {
    static CacheMetrics metrics;
    return metrics;
  }
};

}  // namespace

size_t CachedResult::CostBytes() const {
  size_t cost = sizeof(CachedResult) + json.capacity();
  if (result) {
    cost += sizeof(TSExplainResult);
    cost += result->segmentation.cuts.capacity() * sizeof(int);
    cost += result->k_variance_curve.capacity() * sizeof(double);
    cost += result->sketch_positions.capacity() * sizeof(int);
    for (const SegmentExplanation& seg : result->segments) {
      cost += sizeof(SegmentExplanation);
      cost += seg.begin_label.capacity() + seg.end_label.capacity();
      for (const ExplanationItem& item : seg.top) {
        cost += sizeof(ExplanationItem) + item.description.capacity();
      }
    }
  }
  return cost;
}

ResultCache::ResultCache(size_t capacity_bytes, int num_shards) {
  TSE_CHECK_GE(num_shards, 1);
  const size_t shards = RoundUpPow2(static_cast<size_t>(num_shards));
  shard_mask_ = shards - 1;
  capacity_per_shard_ = std::max<size_t>(1, capacity_bytes / shards);
  shards_.reserve(shards);
  for (size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ResultCache::~ResultCache() {
  CacheMetrics& metrics = CacheMetrics::Get();
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    MutexLock lock(shard.mu);
    metrics.entries.Add(-static_cast<int64_t>(shard.entries.size()));
    metrics.bytes_used.Add(-static_cast<int64_t>(shard.bytes_used));
  }
}

ResultCache::Shard& ResultCache::ShardFor(const std::string& key) {
  return *shards_[HashKey(key) & shard_mask_];
}

ResultCache::BudgetsPtr ResultCache::SnapshotBudgets() const {
  MutexLock lock(budgets_mu_);
  return budgets_;
}

int ResultCache::MatchBudget(const BudgetList& budgets,
                             const std::string& key) {
  for (size_t b = 0; b < budgets.size(); ++b) {
    if (key.compare(0, budgets[b].prefix.size(), budgets[b].prefix) == 0) {
      return static_cast<int>(b);
    }
  }
  return -1;
}

void ResultCache::RemoveEntryLocked(
    Shard& shard, std::unordered_map<std::string, Entry>::iterator it) {
  CacheMetrics& metrics = CacheMetrics::Get();
  metrics.entries.Add(-1);
  metrics.bytes_used.Add(-static_cast<int64_t>(it->second.cost));
  shard.bytes_used -= it->second.cost;
  if (it->second.budget >= 0) {
    shard.budget_bytes[static_cast<size_t>(it->second.budget)] -=
        it->second.cost;
  }
  shard.lru.erase(it->second.lru_pos);
  shard.entries.erase(it);
}

void ResultCache::InsertLocked(Shard& shard, const BudgetList& budgets,
                               const std::string& key,
                               const ValuePtr& value) {
  // An existing entry under this key is stale by definition (the caller
  // computed a fresh value): its accounting is dropped FIRST so
  // bytes_used is never double-charged and the eviction loop below never
  // runs against a stale cost — and an oversized fresh value removes the
  // stale entry rather than leaving it to be served.
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) RemoveEntryLocked(shard, it);

  const size_t cost = value->CostBytes();
  if (cost > capacity_per_shard_) return;  // would evict everything: skip
  if (shard.budget_bytes.size() < budgets.size()) {
    shard.budget_bytes.resize(budgets.size(), 0);
  }
  const int budget = MatchBudget(budgets, key);
  if (budget >= 0 && cost > budgets[static_cast<size_t>(budget)].per_shard) {
    return;  // would evict the namespace's whole shard share: skip
  }
  shard.lru.push_front(key);
  Entry entry;
  entry.value = value;
  entry.cost = cost;
  entry.budget = budget;
  entry.lru_pos = shard.lru.begin();
  shard.entries.emplace(key, std::move(entry));
  shard.bytes_used += cost;
  CacheMetrics::Get().entries.Add(1);
  CacheMetrics::Get().bytes_used.Add(static_cast<int64_t>(cost));
  if (budget >= 0) {
    const size_t b = static_cast<size_t>(budget);
    shard.budget_bytes[b] += cost;
    // Prefix budget: evict the namespace's own LRU tail (a back-to-front
    // walk restricted to this budget preserves LRU order within the
    // prefix). Other namespaces' entries are untouchable here — that is
    // the isolation property.
    while (shard.budget_bytes[b] > budgets[b].per_shard) {
      bool evicted = false;
      for (auto lit = shard.lru.rbegin(); lit != shard.lru.rend(); ++lit) {
        auto vit = shard.entries.find(*lit);
        TSE_CHECK(vit != shard.entries.end());
        if (vit->second.budget == budget) {
          RemoveEntryLocked(shard, vit);
          ++shard.evictions;
          ++shard.budget_evictions;
          CacheMetrics::Get().evictions.Inc();
          CacheMetrics::Get().budget_evictions.Inc();
          evicted = true;
          break;
        }
      }
      if (!evicted) break;  // unreachable if accounting is exact
    }
  }
  while (shard.bytes_used > capacity_per_shard_ && !shard.lru.empty()) {
    auto vit = shard.entries.find(shard.lru.back());
    TSE_CHECK(vit != shard.entries.end());
    RemoveEntryLocked(shard, vit);
    ++shard.evictions;
    CacheMetrics::Get().evictions.Inc();
  }
}

ResultCache::ValuePtr ResultCache::GetOrCompute(const std::string& key,
                                                const ComputeFn& compute,
                                                bool* was_hit) {
  Shard& shard = ShardFor(key);
  std::shared_ptr<Flight> flight;
  bool leader = false;
  {
    MutexLock lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      // Touch: move to the LRU front.
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
      ++shard.hits;
      CacheMetrics::Get().hits.Inc();
      if (was_hit) *was_hit = true;
      return it->second.value;
    }
    auto fit = shard.inflight.find(key);
    if (fit != shard.inflight.end()) {
      flight = fit->second;
      ++shard.coalesced;
      CacheMetrics::Get().coalesced.Inc();
    } else {
      flight = std::make_shared<Flight>();
      flight->future = flight->promise.get_future().share();
      shard.inflight.emplace(key, flight);
      leader = true;
      ++shard.misses;
      CacheMetrics::Get().misses.Inc();
    }
  }

  if (!leader) {
    if (was_hit) *was_hit = true;  // another thread's work served us
    return flight->future.get();
  }

  if (was_hit) *was_hit = false;
  ValuePtr value = compute();  // outside the lock: may be seconds long
  if (value) {
    const BudgetsPtr budgets = SnapshotBudgets();
    MutexLock lock(shard.mu);
    shard.inflight.erase(key);
    InsertLocked(shard, *budgets, key, value);
  } else {
    MutexLock lock(shard.mu);
    shard.inflight.erase(key);
  }
  flight->promise.set_value(value);
  return value;
}

ResultCache::ValuePtr ResultCache::Lookup(const std::string& key) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return nullptr;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
  ++shard.hits;
  CacheMetrics::Get().hits.Inc();
  return it->second.value;
}

void ResultCache::Put(const std::string& key, const ValuePtr& value) {
  TSE_CHECK(value != nullptr);
  const BudgetsPtr budgets = SnapshotBudgets();
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  InsertLocked(shard, *budgets, key, value);
}

void ResultCache::SetPrefixBudget(const std::string& prefix,
                                  size_t budget_bytes) {
  TSE_CHECK(!prefix.empty());
  const size_t per_shard =
      std::max<size_t>(1, budget_bytes / shards_.size());
  BudgetsPtr snapshot;
  int index = -1;
  {
    MutexLock lock(budgets_mu_);
    auto next = std::make_shared<BudgetList>(*budgets_);
    for (size_t b = 0; b < next->size(); ++b) {
      if ((*next)[b].prefix == prefix) index = static_cast<int>(b);
    }
    if (index < 0) {
      next->push_back(Budget{prefix, per_shard});
      index = static_cast<int>(next->size()) - 1;
    } else {
      (*next)[static_cast<size_t>(index)].per_shard = per_shard;
    }
    budgets_ = std::move(next);
    snapshot = budgets_;
  }
  // Re-attribute resident entries and enforce the (new) bound. Budgets
  // are installed before a namespace's first insert in the service, so
  // this scan usually finds nothing; it exists for resizes.
  const BudgetList& budgets = *snapshot;
  const size_t b = static_cast<size_t>(index);
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(shard.mu);
    if (shard.budget_bytes.size() < budgets.size()) {
      shard.budget_bytes.resize(budgets.size(), 0);
    }
    for (auto& [key, entry] : shard.entries) {
      const int match = MatchBudget(budgets, key);
      if (match == entry.budget) continue;
      if (entry.budget >= 0) {
        shard.budget_bytes[static_cast<size_t>(entry.budget)] -= entry.cost;
      }
      entry.budget = match;
      if (match >= 0) {
        shard.budget_bytes[static_cast<size_t>(match)] += entry.cost;
      }
    }
    while (shard.budget_bytes[b] > budgets[b].per_shard) {
      bool evicted = false;
      for (auto lit = shard.lru.rbegin(); lit != shard.lru.rend(); ++lit) {
        auto vit = shard.entries.find(*lit);
        TSE_CHECK(vit != shard.entries.end());
        if (vit->second.budget == index) {
          RemoveEntryLocked(shard, vit);
          ++shard.evictions;
          ++shard.budget_evictions;
          CacheMetrics::Get().evictions.Inc();
          CacheMetrics::Get().budget_evictions.Inc();
          evicted = true;
          break;
        }
      }
      if (!evicted) break;  // unreachable if accounting is exact
    }
  }
}

size_t ResultCache::PrefixBytes(const std::string& prefix) const {
  int index = -1;
  {
    MutexLock lock(budgets_mu_);
    for (size_t b = 0; b < budgets_->size(); ++b) {
      if ((*budgets_)[b].prefix == prefix) index = static_cast<int>(b);
    }
  }
  size_t total = 0;
  if (index >= 0) {
    for (const auto& shard_ptr : shards_) {
      const Shard& shard = *shard_ptr;
      MutexLock lock(shard.mu);
      if (static_cast<size_t>(index) < shard.budget_bytes.size()) {
        total += shard.budget_bytes[static_cast<size_t>(index)];
      }
    }
    return total;
  }
  // Unbudgeted prefix: full scan (stats-only path, rare).
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    MutexLock lock(shard.mu);
    for (const auto& [key, entry] : shard.entries) {
      if (key.compare(0, prefix.size(), prefix) == 0) total += entry.cost;
    }
  }
  return total;
}

std::vector<size_t> ResultCache::PrefixBytesMany(
    const std::vector<std::string>& prefixes) const {
  std::vector<size_t> totals(prefixes.size(), 0);
  // Budgeted prefixes (the common case once tenant budgets are on) are
  // answered from per-shard accounting; only the rest need the entry
  // scan, and all of them share ONE pass.
  const BudgetsPtr budgets = SnapshotBudgets();
  std::vector<int> budget_index(prefixes.size(), -1);
  std::vector<size_t> scanned;  // indices answered by the scan
  for (size_t p = 0; p < prefixes.size(); ++p) {
    for (size_t b = 0; b < budgets->size(); ++b) {
      if ((*budgets)[b].prefix == prefixes[p]) {
        budget_index[p] = static_cast<int>(b);
      }
    }
    if (budget_index[p] < 0) scanned.push_back(p);
  }
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    MutexLock lock(shard.mu);
    for (size_t p = 0; p < prefixes.size(); ++p) {
      const int b = budget_index[p];
      if (b >= 0 && static_cast<size_t>(b) < shard.budget_bytes.size()) {
        totals[p] += shard.budget_bytes[static_cast<size_t>(b)];
      }
    }
    if (scanned.empty()) continue;
    for (const auto& [key, entry] : shard.entries) {
      for (const size_t p : scanned) {
        if (key.compare(0, prefixes[p].size(), prefixes[p]) == 0) {
          totals[p] += entry.cost;
          break;  // prefixes are disjoint: first match is the only match
        }
      }
    }
  }
  return totals;
}

std::vector<std::pair<std::string, ResultCache::ValuePtr>>
ResultCache::ExportEntries() const {
  std::vector<std::pair<std::string, ValuePtr>> out;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    MutexLock lock(shard.mu);
    for (auto it = shard.lru.rbegin(); it != shard.lru.rend(); ++it) {
      const auto vit = shard.entries.find(*it);
      TSE_CHECK(vit != shard.entries.end());
      out.emplace_back(vit->first, vit->second.value);
    }
  }
  return out;
}

void ResultCache::Invalidate(const std::string& key) {
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return;
  RemoveEntryLocked(shard, it);
  ++shard.invalidations;
  CacheMetrics::Get().invalidations.Inc();
}

size_t ResultCache::InvalidatePrefix(const std::string& prefix) {
  return InvalidatePrefixes({prefix});
}

size_t ResultCache::InvalidatePrefixes(
    const std::vector<std::string>& prefixes) {
  size_t removed = 0;
  for (auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(shard.mu);
    for (auto it = shard.entries.begin(); it != shard.entries.end();) {
      bool matched = false;
      for (const std::string& prefix : prefixes) {
        if (it->first.compare(0, prefix.size(), prefix) == 0) {
          matched = true;
          break;
        }
      }
      if (matched) {
        auto victim = it++;
        RemoveEntryLocked(shard, victim);
        ++shard.invalidations;
        CacheMetrics::Get().invalidations.Inc();
        ++removed;
      } else {
        ++it;
      }
    }
  }
  return removed;
}

ResultCache::Stats ResultCache::stats() const {
  Stats stats;
  stats.capacity_bytes = capacity_per_shard_ * shards_.size();
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    MutexLock lock(shard.mu);
    stats.hits += shard.hits;
    stats.misses += shard.misses;
    stats.coalesced += shard.coalesced;
    stats.evictions += shard.evictions;
    stats.budget_evictions += shard.budget_evictions;
    stats.invalidations += shard.invalidations;
    stats.entries += shard.entries.size();
    stats.bytes_used += shard.bytes_used;
  }
  return stats;
}

}  // namespace tsexplain
