#include "src/service/trace.h"

#include <cstddef>

#include "src/common/check.h"

namespace tsexplain {

namespace {
constexpr double kGapEpsilonMs = 1e-6;
}  // namespace

QueryTrace::QueryTrace() {
  TraceSpan root;
  root.name = "query";
  root.parent = -1;
  spans_.push_back(std::move(root));
}

int QueryTrace::BeginSpan(const std::string& name, int parent) {
  TSE_CHECK_GE(parent, 0);
  TSE_CHECK_LT(static_cast<size_t>(parent), spans_.size());
  TraceSpan span;
  span.name = name;
  span.start_ms = timer_.ElapsedMs();
  span.parent = parent;
  spans_.push_back(std::move(span));
  return static_cast<int>(spans_.size()) - 1;
}

void QueryTrace::EndSpan(int index) {
  TSE_CHECK_GT(index, 0);
  TSE_CHECK_LT(static_cast<size_t>(index), spans_.size());
  TraceSpan& span = spans_[static_cast<size_t>(index)];
  span.duration_ms = timer_.ElapsedMs() - span.start_ms;
  if (span.duration_ms < 0.0) span.duration_ms = 0.0;
}

int QueryTrace::AddSpan(const std::string& name, double start_ms,
                        double duration_ms, int parent) {
  TSE_CHECK_GE(parent, 0);
  TSE_CHECK_LT(static_cast<size_t>(parent), spans_.size());
  TraceSpan span;
  span.name = name;
  span.start_ms = start_ms;
  span.duration_ms = duration_ms < 0.0 ? 0.0 : duration_ms;
  span.parent = parent;
  spans_.push_back(std::move(span));
  return static_cast<int>(spans_.size()) - 1;
}

void QueryTrace::Finalize(double total_ms) {
  TSE_CHECK(!finalized_) << "QueryTrace::Finalize called twice";
  finalized_ = true;
  spans_[0].duration_ms = total_ms < 0.0 ? 0.0 : total_ms;

  // Parents always precede their children (a child needs its parent's
  // index to exist), so one top-down pass sees every parent with its
  // final duration before fitting that parent's children. Synthetic
  // "other" spans are appended as leaves and never revisited.
  const size_t recorded = spans_.size();
  for (size_t p = 0; p < recorded; ++p) {
    std::vector<size_t> children;
    for (size_t c = p + 1; c < recorded; ++c) {
      if (spans_[c].parent == static_cast<int>(p)) children.push_back(c);
    }
    if (children.empty()) continue;

    const double parent_ms = spans_[p].duration_ms;
    double child_sum = 0.0;
    for (size_t c : children) {
      if (spans_[c].duration_ms < 0.0) spans_[c].duration_ms = 0.0;
      child_sum += spans_[c].duration_ms;
    }
    if (child_sum > parent_ms && child_sum > 0.0) {
      // Cross-clock skew: the children's own timers overshot the parent's
      // wall clock. Scale durations (and start offsets relative to the
      // parent) down so the tree stays consistent — same policy as
      // TimingBreakdown::Partition.
      const double scale = parent_ms / child_sum;
      for (size_t c : children) {
        spans_[c].duration_ms *= scale;
        spans_[c].start_ms =
            spans_[p].start_ms + (spans_[c].start_ms - spans_[p].start_ms) * scale;
      }
      child_sum = parent_ms;
    }
    const double gap = parent_ms - child_sum;
    if (gap > kGapEpsilonMs) {
      // Unaccounted time inside the parent, attributed to a trailing
      // synthetic span so the children tile the parent exactly.
      TraceSpan other;
      other.name = "other";
      other.start_ms = spans_[p].start_ms + child_sum;
      other.duration_ms = gap;
      other.parent = static_cast<int>(p);
      spans_.push_back(std::move(other));
    } else if (gap > 0.0) {
      // Sub-epsilon remainder: fold it into the last child instead of
      // emitting a degenerate span, keeping the partition exact.
      spans_[children.back()].duration_ms += gap;
    }
  }
}

}  // namespace tsexplain
