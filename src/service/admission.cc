#include "src/service/admission.h"

#include <chrono>

#include "src/common/check.h"
#include "src/common/metrics.h"
#include "src/common/thread_pool.h"
#include "src/common/timer.h"

namespace tsexplain {
namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Process-wide admission metrics (docs/OBSERVABILITY.md). The per-
// instance Stats counters stay authoritative for the `stats` op's
// structural view; these shadow them in the registry so the `metrics`
// op and Prometheus scrapes see the same decisions with a queue-wait
// histogram attached.
struct AdmissionMetrics {
  Counter& admitted =
      MetricRegistry::Global().GetCounter("admission.admitted");
  Counter& coalesced =
      MetricRegistry::Global().GetCounter("admission.coalesced");
  Counter& shed_overload =
      MetricRegistry::Global().GetCounter("admission.shed_overload");
  Counter& shed_tenant =
      MetricRegistry::Global().GetCounter("admission.shed_tenant");
  Counter& backlog_shed =
      MetricRegistry::Global().GetCounter("admission.backlog_shed");
  Gauge& active = MetricRegistry::Global().GetGauge("admission.active");
  Gauge& queued = MetricRegistry::Global().GetGauge("admission.queued");
  Gauge& peak_active =
      MetricRegistry::Global().GetGauge("admission.peak_active");
  Gauge& peak_queued =
      MetricRegistry::Global().GetGauge("admission.peak_queued");
  Histogram& queue_wait_ms =
      MetricRegistry::Global().GetHistogram("admission.queue_wait_ms");
  static AdmissionMetrics& Get() {
    static AdmissionMetrics metrics;
    return metrics;
  }
};

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options) {
  pool_size_ = options.pool_size >= 1 ? options.pool_size
                                      : ThreadPool::Shared().size();
  max_concurrent_ = options.max_concurrent >= 1 ? options.max_concurrent
                                                : pool_size_;
  queue_depth_ = options.queue_depth >= 0 ? options.queue_depth : 0;
  per_tenant_inflight_ =
      options.per_tenant_inflight >= 0 ? options.per_tenant_inflight : 0;
  backlog_capacity_ = max_concurrent_ + queue_depth_;
}

AdmissionController::Ticket::Ticket(Ticket&& other) noexcept
    : controller_(other.controller_),
      outcome_(other.outcome_),
      granted_threads_(other.granted_threads_),
      retry_after_ms_(other.retry_after_ms_),
      key(std::move(other.key)),
      tenant(std::move(other.tenant)),
      start_ms_(other.start_ms_) {
  other.controller_ = nullptr;
}

AdmissionController::Ticket::~Ticket() {
  if (controller_ != nullptr) controller_->Release(*this);
}

double AdmissionController::RetryAfterLocked() const {
  double hint = ewma_run_ms_ * (1.0 + static_cast<double>(queued_)) /
                static_cast<double>(max_concurrent_);
  if (hint < 1.0) hint = 1.0;
  if (hint > 30000.0) hint = 30000.0;
  return hint;
}

AdmissionController::Ticket AdmissionController::Admit(
    const std::string& key, const std::string& tenant,
    int requested_threads) {
  TSE_CHECK_GE(requested_threads, 1)
      << "resolve the thread knob before Admit";
  AdmissionMetrics& metrics = AdmissionMetrics::Get();
  Timer wait_timer;
  MutexLock lock(mu_);

  // Tenant gate first: a tenant at its cap is shed without ever touching
  // the shared queue, so quota pressure cannot convert into overload
  // pressure for everyone else.
  const bool tenant_counted =
      per_tenant_inflight_ > 0 && !tenant.empty();
  if (tenant_counted) {
    int& count = tenant_inflight_[tenant];
    if (count >= per_tenant_inflight_) {
      ++stats_.shed_tenant;
      metrics.shed_tenant.Inc();
      Ticket ticket;
      ticket.outcome_ = Outcome::kShedTenant;
      ticket.retry_after_ms_ = RetryAfterLocked();
      return ticket;
    }
    ++count;
  }

  for (;;) {
    // Duplicate batching: an in-flight leader for this key exists — wait
    // for it instead of consuming a slot; the result is then cached.
    auto fit = inflight_.find(key);
    if (fit != inflight_.end()) {
      const std::shared_ptr<Flight> flight = fit->second;
      ++stats_.coalesced;
      metrics.coalesced.Inc();
      while (!flight->done) cv_.Wait(mu_);
      Ticket ticket;
      ticket.controller_ = this;  // releases the tenant count
      ticket.outcome_ = Outcome::kCoalesced;
      ticket.tenant = tenant_counted ? tenant : std::string();
      return ticket;
    }

    if (active_ < max_concurrent_) {
      ++active_;
      ++stats_.admitted;
      metrics.admitted.Inc();
      metrics.active.Set(static_cast<int64_t>(active_));
      metrics.peak_active.SetMax(static_cast<int64_t>(active_));
      metrics.queue_wait_ms.Observe(wait_timer.ElapsedMs());
      if (static_cast<size_t>(active_) > stats_.peak_active) {
        stats_.peak_active = static_cast<size_t>(active_);
      }
      inflight_.emplace(key, std::make_shared<Flight>());
      // Queued duplicates of this key can now batch onto the new leader
      // instead of waiting for a slot of their own.
      if (queued_ > 0) cv_.NotifyAll();
      Ticket ticket;
      ticket.controller_ = this;
      ticket.outcome_ = Outcome::kAdmitted;
      ticket.granted_threads_ =
          AdaptiveThreadGrant(requested_threads, active_, pool_size_);
      ticket.key = key;
      ticket.tenant = tenant_counted ? tenant : std::string();
      ticket.start_ms_ = NowMs();
      return ticket;
    }

    if (queued_ >= queue_depth_) {
      ++stats_.shed_overload;
      metrics.shed_overload.Inc();
      Ticket ticket;
      ticket.outcome_ = Outcome::kShedOverload;
      ticket.retry_after_ms_ = RetryAfterLocked();
      if (tenant_counted) {
        auto tit = tenant_inflight_.find(tenant);
        if (--tit->second == 0) tenant_inflight_.erase(tit);
      }
      return ticket;
    }

    ++queued_;
    metrics.queued.Set(static_cast<int64_t>(queued_));
    metrics.peak_queued.SetMax(static_cast<int64_t>(queued_));
    if (static_cast<size_t>(queued_) > stats_.peak_queued) {
      stats_.peak_queued = static_cast<size_t>(queued_);
    }
    while (active_ >= max_concurrent_ && inflight_.count(key) == 0) {
      cv_.Wait(mu_);
    }
    --queued_;
    metrics.queued.Set(static_cast<int64_t>(queued_));
  }
}

void AdmissionController::Release(Ticket& ticket) {
  {
    MutexLock lock(mu_);
    if (ticket.outcome_ == Outcome::kAdmitted) {
      --active_;
      AdmissionMetrics::Get().active.Set(static_cast<int64_t>(active_));
      auto it = inflight_.find(ticket.key);
      if (it != inflight_.end()) {
        it->second->done = true;  // waiters hold the shared_ptr
        inflight_.erase(it);
      }
      const double elapsed = NowMs() - ticket.start_ms_;
      if (elapsed >= 0.0) {
        ewma_run_ms_ = 0.8 * ewma_run_ms_ + 0.2 * elapsed;
      }
    }
    if (!ticket.tenant.empty()) {
      auto tit = tenant_inflight_.find(ticket.tenant);
      if (tit != tenant_inflight_.end() && --tit->second == 0) {
        tenant_inflight_.erase(tit);
      }
    }
  }
  cv_.NotifyAll();
}

bool AdmissionController::TryAcquireBacklogSlot() {
  MutexLock lock(mu_);
  if (backlog_ >= backlog_capacity_) {
    ++stats_.backlog_shed;
    AdmissionMetrics::Get().backlog_shed.Inc();
    return false;
  }
  ++backlog_;
  return true;
}

void AdmissionController::ReleaseBacklogSlot() {
  MutexLock lock(mu_);
  TSE_CHECK_GT(backlog_, 0);
  --backlog_;
}

double AdmissionController::RetryAfterMsHint() const {
  MutexLock lock(mu_);
  return RetryAfterLocked();
}

AdmissionController::Stats AdmissionController::stats() const {
  MutexLock lock(mu_);
  Stats stats = stats_;
  stats.active = static_cast<size_t>(active_);
  stats.queued = static_cast<size_t>(queued_);
  return stats;
}

}  // namespace tsexplain
