// Admission control for the explanation service: bounded in-flight work,
// a bounded wait queue, load shedding, duplicate-query batching, and
// per-tenant in-flight caps.
//
// Why the service needs this: cold explains are seconds of CPU. Without
// admission, N concurrent cold queries each grab their requested threads
// and the backlog grows without bound — tail latency explodes and the
// process eventually swaps. The controller enforces:
//
//  * at most `max_concurrent` queries RUN at once; the next
//    `queue_depth` wait their turn (FIFO-ish via condition variable);
//    anything beyond that is SHED immediately with a structured
//    `overloaded` error carrying a retry-after hint, so the caller backs
//    off instead of queueing unboundedly;
//  * duplicate in-flight queries BATCH: a request whose key is already
//    admitted does not consume a slot or a queue position — it waits for
//    the leader to finish (the "window" is the leader's run) and then
//    serves the leader's now-cached result. This extends the
//    ResultCache's single-flight upward: duplicates no longer occupy
//    admission capacity while they wait;
//  * per-tenant in-flight caps: a tenant at its cap is shed with
//    `quota_exceeded` BEFORE it can occupy queue slots, so one tenant
//    cannot monopolize admission;
//  * adaptive thread grants: an admitted query is granted
//    AdaptiveThreadGrant(requested, active, pool) threads — the shared
//    pool is divided across admitted queries instead of each taking its
//    requested count independently. Results are bit-identical at any
//    granted count (the determinism suite guarantees thread-count
//    invariance), so this is purely a scheduling decision.
//
// Deadlock note: Admit() may block, and in the server it runs on shared
// ThreadPool workers. That is safe: a waiter only exists while at least
// one ADMITTED query holds a slot, admitted queries run on their own
// thread and complete without needing a free pool worker (ParallelFor is
// caller-participating), and batched followers wait only on leaders that
// are already running. The transport additionally bounds how many
// requests may be queued *behind* the pool (TryAcquireBacklogSlot), so
// the task backlog cannot grow without bound either.

#ifndef TSEXPLAIN_SERVICE_ADMISSION_H_
#define TSEXPLAIN_SERVICE_ADMISSION_H_

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/common/mutex.h"

namespace tsexplain {

struct AdmissionOptions {
  /// Queries allowed to run concurrently. 0 = auto: the shared
  /// ThreadPool's size (one running query per worker).
  int max_concurrent = 0;
  /// Admitted-but-waiting requests beyond the running set before
  /// shedding begins.
  int queue_depth = 16;
  /// Per-tenant in-flight bound (running + queued + batched followers);
  /// 0 = unlimited. Requests without a tenant are never tenant-capped.
  int per_tenant_inflight = 0;
  /// Worker count the thread grants divide. 0 = auto: the shared pool.
  int pool_size = 0;
};

class AdmissionController {
 public:
  enum class Outcome {
    kAdmitted,       // run it; `granted_threads` is the allocation
    kCoalesced,      // a leader for this key finished; serve from cache
    kShedOverload,   // queue full: reply `overloaded` + retry-after
    kShedTenant,     // tenant at cap: reply `quota_exceeded` + retry-after
  };

  struct Stats {
    size_t admitted = 0;
    size_t coalesced = 0;       // batched onto an in-flight duplicate
    size_t shed_overload = 0;
    size_t shed_tenant = 0;
    size_t backlog_shed = 0;    // transport-level pre-dispatch sheds
    size_t active = 0;          // currently running (instantaneous)
    size_t queued = 0;          // currently waiting (instantaneous)
    size_t peak_active = 0;
    size_t peak_queued = 0;     // never exceeds queue_depth (asserted in tests)
  };

  /// RAII admission lease. Admitted tickets release their slot (and wake
  /// batched followers) on destruction; every outcome releases its
  /// tenant in-flight count.
  class Ticket {
   public:
    Ticket(Ticket&& other) noexcept;
    Ticket& operator=(Ticket&&) = delete;
    Ticket(const Ticket&) = delete;
    ~Ticket();

    Outcome outcome() const { return outcome_; }
    bool admitted() const { return outcome_ == Outcome::kAdmitted; }
    bool shed() const {
      return outcome_ == Outcome::kShedOverload ||
             outcome_ == Outcome::kShedTenant;
    }
    int granted_threads() const { return granted_threads_; }
    double retry_after_ms() const { return retry_after_ms_; }

   private:
    friend class AdmissionController;
    Ticket() = default;

    AdmissionController* controller_ = nullptr;
    Outcome outcome_ = Outcome::kShedOverload;
    int granted_threads_ = 1;
    double retry_after_ms_ = 0.0;
    std::string key;
    std::string tenant;
    double start_ms_ = 0.0;
  };

  explicit AdmissionController(AdmissionOptions options);

  /// Admits, batches, queues, or sheds one request. Blocks only in the
  /// bounded-queue case; shed decisions return immediately.
  /// `requested_threads` must be resolved (>= 1, see ResolveThreadCount).
  Ticket Admit(const std::string& key, const std::string& tenant,
               int requested_threads) TSE_EXCLUDES(mu_);

  /// Transport backlog bound: a dispatcher reserves a slot BEFORE handing
  /// an expensive request to the thread pool and releases it when the
  /// request completes, so at most max_concurrent + queue_depth expensive
  /// requests exist anywhere in the system (running + queued + parked in
  /// the pool's task queue). Returns false when the request must be shed
  /// right now, on the transport thread.
  bool TryAcquireBacklogSlot() TSE_EXCLUDES(mu_);
  void ReleaseBacklogSlot() TSE_EXCLUDES(mu_);

  /// How long a shed caller should wait before retrying: an EWMA of
  /// recent admitted-run durations scaled by the current queue pressure.
  double RetryAfterMsHint() const TSE_EXCLUDES(mu_);

  Stats stats() const TSE_EXCLUDES(mu_);
  int max_concurrent() const { return max_concurrent_; }
  int queue_depth() const { return queue_depth_; }
  int pool_size() const { return pool_size_; }

 private:
  struct Flight {
    bool done = false;
  };

  void Release(Ticket& ticket) TSE_EXCLUDES(mu_);
  double RetryAfterLocked() const TSE_REQUIRES(mu_);

  int max_concurrent_ = 1;
  int queue_depth_ = 0;
  int per_tenant_inflight_ = 0;
  int pool_size_ = 1;
  int backlog_capacity_ = 1;

  mutable Mutex mu_;
  CondVar cv_;
  std::unordered_map<std::string, std::shared_ptr<Flight>> inflight_
      TSE_GUARDED_BY(mu_);
  std::unordered_map<std::string, int> tenant_inflight_
      TSE_GUARDED_BY(mu_);
  int active_ TSE_GUARDED_BY(mu_) = 0;
  int queued_ TSE_GUARDED_BY(mu_) = 0;
  int backlog_ TSE_GUARDED_BY(mu_) = 0;
  // Seeded pessimistically; converges fast.
  double ewma_run_ms_ TSE_GUARDED_BY(mu_) = 100.0;
  Stats stats_ TSE_GUARDED_BY(mu_);
};

}  // namespace tsexplain

#endif  // TSEXPLAIN_SERVICE_ADMISSION_H_
