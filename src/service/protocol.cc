#include "src/service/protocol.h"

#include <chrono>
#include <utility>

#include "src/common/metrics.h"
#include "src/common/metrics_history.h"
#include "src/common/strings.h"
#include "src/common/timer.h"
#include "src/cube/score_kernels.h"
#include "src/seg/segment_distance.h"
#include "src/service/watchdog.h"
#include "src/storage/table_snapshot.h"

// Build identity surfaced by `state` and the `metrics` op. CMake stamps
// the configure-time git SHA; embedders without the definition report
// "unknown" rather than failing to build.
#ifndef TSEXPLAIN_GIT_SHA
#define TSEXPLAIN_GIT_SHA "unknown"
#endif

namespace tsexplain {
namespace {

// Wall-clock timestamp for log records (the only place the service uses
// wall time; every latency is steady-clock).
double WallMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

// Response envelope helpers ------------------------------------------------

// Echoes the request id (number or string; null when absent/invalid).
void EmitId(JsonWriter& json, const JsonValue* request) {
  json.Key("id");
  const JsonValue* id = request ? request->Find("id") : nullptr;
  if (id && id->IsNumber()) {
    const double d = id->AsDouble();
    // Integral ids in the exactly-representable range echo as integers;
    // anything else (fractional, huge, inf) echoes through Number, which
    // never performs an out-of-range double->int cast (UB).
    if (d >= -9.0e15 && d <= 9.0e15 &&
        d == static_cast<double>(static_cast<long long>(d))) {
      json.Int(static_cast<long long>(d));
    } else {
      json.Number(d);
    }
  } else if (id && id->IsString()) {
    json.String(id->AsString());
  } else {
    json.Null();
  }
}

// `retry_after_ms` > 0 (overload / quota sheds) is embedded in the error
// object so clients can back off without parsing the message.
std::string MakeError(const JsonValue* request, const std::string& op,
                      const std::string& code, const std::string& message,
                      double retry_after_ms = 0.0) {
  JsonWriter json(/*pretty=*/false);
  json.BeginObject();
  EmitId(json, request);
  json.Key("ok");
  json.Bool(false);
  if (!op.empty()) {
    json.Key("op");
    json.String(op);
  }
  json.Key("error");
  json.BeginObject();
  json.Key("code");
  json.String(code);
  json.Key("message");
  json.String(message);
  if (retry_after_ms > 0.0) {
    json.Key("retry_after_ms");
    json.Number(retry_after_ms);
  }
  json.EndObject();
  json.EndObject();
  return json.str();
}

// Begins the {"id":..,"ok":true,"op":..,"request_id":..} envelope; the
// caller adds op-specific fields and calls EndObject. The request id
// stays AHEAD of any op-specific payload so the warm-restart
// byte-identity checks (everything after `"result":`) are unaffected by
// per-process id sequences.
void BeginOk(JsonWriter& json, const JsonValue& request,
             const std::string& op, uint64_t request_id) {
  json.BeginObject();
  EmitId(json, &request);
  json.Key("ok");
  json.Bool(true);
  json.Key("op");
  json.String(op);
  json.Key("request_id");
  json.Int(static_cast<long long>(request_id));
}

// Emits the finalized span tree (trace.h) as a flat array; parents
// always precede their children, so clients rebuild the tree in one
// pass. Skipped entirely when the request did not ask for tracing.
void EmitTrace(JsonWriter& json, const std::vector<TraceSpan>& spans) {
  if (spans.empty()) return;
  json.Key("trace");
  json.BeginArray();
  for (const TraceSpan& span : spans) {
    json.BeginObject();
    json.Key("name");
    json.String(span.name);
    json.Key("start_ms");
    json.Number(span.start_ms);
    json.Key("duration_ms");
    json.Number(span.duration_ms);
    json.Key("parent");
    json.Int(span.parent);
    json.EndObject();
  }
  json.EndArray();
}

// The "build" block of `state` and the `metrics` op: who is this binary
// (docs/OBSERVABILITY.md, "Self-observation").
void EmitBuildInfo(JsonWriter& json, int pool_size) {
  json.Key("build");
  json.BeginObject();
  json.Key("git_sha");
  json.String(TSEXPLAIN_GIT_SHA);
  json.Key("simd");
  json.String(ScoreAllUsesSimd() ? "avx2" : "scalar");
  json.Key("pointer_bits");
  json.Int(static_cast<long long>(sizeof(void*) * 8));
  json.Key("threads");
  json.Int(pool_size);
  json.EndObject();
}

double UptimeSeconds(double start_wall_ms) {
  if (start_wall_ms <= 0.0) return 0.0;
  const double seconds = (WallMs() - start_wall_ms) / 1000.0;
  return seconds > 0.0 ? seconds : 0.0;
}

bool ParseAggregate(const std::string& name, AggregateFunction* out) {
  if (name == "sum") {
    *out = AggregateFunction::kSum;
  } else if (name == "count") {
    *out = AggregateFunction::kCount;
  } else if (name == "avg") {
    *out = AggregateFunction::kAvg;
  } else {
    return false;
  }
  return true;
}

bool ParseDiffMetric(const std::string& name, DiffMetricKind* out) {
  if (name == "abs") {
    *out = DiffMetricKind::kAbsoluteChange;
  } else if (name == "rel") {
    *out = DiffMetricKind::kRelativeChange;
  } else if (name == "rr") {
    *out = DiffMetricKind::kRiskRatio;
  } else {
    return false;
  }
  return true;
}

bool ParseVarianceMetric(const std::string& name, VarianceMetric* out) {
  for (VarianceMetric metric : kAllVarianceMetrics) {
    if (name == VarianceMetricName(metric)) {
      *out = metric;
      return true;
    }
  }
  return false;
}

// Session id field: a positive integer (bounded so the double->uint64
// cast below is always defined; fractional ids are rejected rather than
// silently truncated onto someone else's session).
bool ParseSessionId(const JsonValue& request, uint64_t* out,
                    std::string* error) {
  const JsonValue* v = request.Find("session");
  const double d = v && v->IsNumber() ? v->AsDouble() : 0.0;
  if (d < 1 || d > 9.0e15 ||
      d != static_cast<double>(static_cast<uint64_t>(d))) {
    *error = "missing or invalid 'session' (positive integer expected)";
    return false;
  }
  *out = static_cast<uint64_t>(d);
  return true;
}

}  // namespace

bool ParseQueryConfig(const JsonValue& request, TSExplainConfig* config,
                      std::string* error) {
  const std::string agg = request.GetString("agg", "sum");
  if (!ParseAggregate(agg, &config->aggregate)) {
    *error = "unknown aggregate: " + agg;
    return false;
  }
  config->measure = request.GetString("measure");
  if (request.Find("explain_by")) {
    bool ok = false;
    config->explain_by_names = request.GetStringArray("explain_by", &ok);
    if (!ok) {
      *error = "'explain_by' must be an array of strings";
      return false;
    }
  }
  config->max_order = request.GetInt("order", config->max_order);
  config->m = request.GetInt("m", config->m);
  config->fixed_k = request.GetInt("k", config->fixed_k);
  config->max_k = request.GetInt("max_k", config->max_k);
  config->smooth_window = request.GetInt("smooth", config->smooth_window);
  config->threads = request.GetInt("threads", config->threads);
  const std::string diff = request.GetString("diff_metric", "abs");
  if (!ParseDiffMetric(diff, &config->diff_metric)) {
    *error = "unknown diff_metric: " + diff;
    return false;
  }
  const std::string variance = request.GetString("variance_metric", "tse");
  if (!ParseVarianceMetric(variance, &config->variance_metric)) {
    *error = "unknown variance_metric: " + variance;
    return false;
  }
  if (request.GetBool("fast")) {
    config->use_filter = true;
    config->use_guess_verify = true;
    config->use_sketch = true;
  }
  config->use_filter = request.GetBool("filter", config->use_filter);
  config->filter_ratio =
      request.GetDouble("filter_ratio", config->filter_ratio);
  config->use_guess_verify =
      request.GetBool("guess_verify", config->use_guess_verify);
  config->initial_guess =
      request.GetInt("initial_guess", config->initial_guess);
  config->use_sketch = request.GetBool("sketch", config->use_sketch);
  config->dedupe_redundant =
      request.GetBool("dedupe", config->dedupe_redundant);
  if (request.Find("exclude")) {
    bool ok = false;
    config->exclude = request.GetStringArray("exclude", &ok);
    if (!ok) {
      *error = "'exclude' must be an array of strings";
      return false;
    }
  }
  return true;
}

bool ProtocolHandler::IsBarrierOp(const std::string& op) {
  // healthz is the one non-barrier write-free op beyond the read list:
  // liveness must answer while everything else is wedged, so transports
  // run it inline without draining (protocol.h).
  return !(op == "explain" || op == "explain_session" ||
           op == "recommend" || op == "list_datasets" || op == "healthz");
}

bool ProtocolHandler::IsExpensiveOp(const std::string& op) {
  return op == "explain" || op == "explain_session";
}

std::string ProtocolHandler::OpOf(const JsonValue& request) {
  return request.GetString("op");
}

std::string ProtocolHandler::MakeParseError(
    const std::string& message) const {
  return MakeError(nullptr, "", error_code::kParseError, message);
}

std::string ProtocolHandler::MakeOverloaded(const JsonValue& request) const {
  return MakeError(&request, OpOf(request), error_code::kOverloaded,
                   "server overloaded: request shed before dispatch",
                   service_.admission().RetryAfterMsHint());
}

std::string ProtocolHandler::Handle(const JsonValue& request) {
  const uint64_t request_id =
      next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  // The watchdog brackets the WHOLE handler, so a query wedged anywhere
  // (admission wait, engine run, render) ages in the in-flight set and
  // eventually surfaces through healthz / `query.stuck`.
  if (introspection_.watchdog) {
    introspection_.watchdog->Begin(request_id, OpOf(request));
  }
  Timer timer;
  const std::string response = HandleInternal(request, request_id);
  if (introspection_.watchdog) introspection_.watchdog->End(request_id);
  if (!log_.access_log) return response;
  // The envelope's "ok" is the first unescaped `"ok":` in the response
  // (JsonWriter escapes quotes inside string values, so a literal
  // `"ok":true` can only be the envelope's own field).
  const size_t ok_pos = response.find("\"ok\":true");
  const size_t fail_pos = response.find("\"ok\":false");
  const bool ok = ok_pos != std::string::npos &&
                  (fail_pos == std::string::npos || ok_pos < fail_pos);
  JsonWriter json(/*pretty=*/false);
  json.BeginObject();
  json.Key("ts_ms");
  json.Number(WallMs());
  json.Key("request_id");
  json.Int(static_cast<long long>(request_id));
  json.Key("op");
  json.String(OpOf(request));
  json.Key("ok");
  json.Bool(ok);
  json.Key("latency_ms");
  json.Number(timer.ElapsedMs());
  json.EndObject();
  log_.access_log->WriteLine(json.str());
  return response;
}

void ProtocolHandler::MaybeLogSlowQuery(const std::string& op,
                                        uint64_t request_id,
                                        const std::string& dataset,
                                        uint64_t session,
                                        const std::string& tenant,
                                        const ExplainResponse& response) {
  if (!log_.slow_query_log || log_.slow_query_ms <= 0.0) return;
  if (response.latency_ms < log_.slow_query_ms) return;
  JsonWriter json(/*pretty=*/false);
  json.BeginObject();
  json.Key("ts_ms");
  json.Number(WallMs());
  json.Key("request_id");
  json.Int(static_cast<long long>(request_id));
  json.Key("op");
  json.String(op);
  if (!dataset.empty()) {
    json.Key("dataset");
    json.String(dataset);
  }
  if (session != 0) {
    json.Key("session");
    json.Int(static_cast<long long>(session));
  }
  json.Key("tenant");
  json.String(tenant);
  json.Key("query_key");
  json.String(response.query_key);
  json.Key("ok");
  json.Bool(response.ok);
  json.Key("cache_hit");
  json.Bool(response.cache_hit);
  json.Key("admission_outcome");
  json.String(response.admission_outcome);
  json.Key("latency_ms");
  json.Number(response.latency_ms);
  // Engine-phase breakdown (tsexplain.h): present only when this request
  // carries a freshly computed structured result (warm-started cache
  // entries persist the wire JSON alone).
  if (response.result) {
    json.Key("timing");
    json.BeginObject();
    json.Key("precompute_ms");
    json.Number(response.result->timing.precompute_ms);
    json.Key("cascading_ms");
    json.Number(response.result->timing.cascading_ms);
    json.Key("segmentation_ms");
    json.Number(response.result->timing.segmentation_ms);
    json.Key("total_ms");
    json.Number(response.result->timing.total_ms);
    json.EndObject();
  }
  json.EndObject();
  log_.slow_query_log->WriteLine(json.str());
}

std::string ProtocolHandler::HandleInternal(const JsonValue& request,
                                            uint64_t request_id) {
  if (!request.IsObject()) {
    return MakeError(&request, "", error_code::kBadRequest,
                     "request must be a JSON object");
  }
  const std::string op = OpOf(request);

  if (op == "register") {
    const std::string name = request.GetString("name");
    if (name.empty()) {
      return MakeError(&request, op, error_code::kBadRequest,
                       "missing 'name'");
    }
    const std::string path = request.GetString("csv_path");
    const std::string inline_csv = request.GetString("csv");
    if (path.empty() == inline_csv.empty()) {
      return MakeError(&request, op, error_code::kBadRequest,
                       "exactly one of 'csv_path' or 'csv' is required");
    }
    std::string error;
    DatasetInfo info;  // from registration, not a racy Get() re-lookup
    bool ok = false;
    if (!path.empty() && storage::IsTableSnapshotFile(path)) {
      // A csv_path that is really a binary table snapshot registers
      // through the storage layer (no re-parse; docs/STORAGE.md). The
      // time/measure columns are baked into the snapshot's schema, so
      // 'time_column' is not required.
      ok = service_.registry().RegisterSnapshotFile(name, path, &error,
                                                    &info);
    } else {
      CsvOptions options;
      options.time_column = request.GetString("time_column");
      if (options.time_column.empty()) {
        return MakeError(&request, op, error_code::kBadRequest,
                         "missing 'time_column'");
      }
      bool measures_ok = true;
      if (request.Find("measures")) {
        options.measure_columns =
            request.GetStringArray("measures", &measures_ok);
      }
      if (!measures_ok) {
        return MakeError(&request, op, error_code::kBadRequest,
                         "'measures' must be an array of strings");
      }
      options.sort_time = request.GetBool("sort_time", true);
      ok = path.empty()
               ? service_.registry().RegisterCsvText(name, inline_csv,
                                                     options, &error, &info)
               : service_.registry().RegisterCsvFile(name, path, options,
                                                     &error, &info);
    }
    if (!ok) {
      return MakeError(&request, op, error_code::kBadRequest, error);
    }
    JsonWriter json(false);
    BeginOk(json, request, op, request_id);
    json.Key("dataset");
    json.String(name);
    json.Key("rows");
    json.Int(static_cast<long long>(info.rows));
    json.Key("time_buckets");
    json.Int(static_cast<long long>(info.time_buckets));
    json.EndObject();
    return json.str();
  }

  if (op == "list_datasets") {
    JsonWriter json(false);
    BeginOk(json, request, op, request_id);
    json.Key("datasets");
    json.BeginArray();
    for (const DatasetInfo& info : service_.registry().List()) {
      json.BeginObject();
      json.Key("name");
      json.String(info.name);
      json.Key("source");
      json.String(info.source);
      json.Key("rows");
      json.Int(static_cast<long long>(info.rows));
      json.Key("time_buckets");
      json.Int(static_cast<long long>(info.time_buckets));
      json.Key("dimensions");
      json.BeginArray();
      for (const std::string& dim : info.dimensions) json.String(dim);
      json.EndArray();
      json.Key("measures");
      json.BeginArray();
      for (const std::string& measure : info.measures) {
        json.String(measure);
      }
      json.EndArray();
      json.Key("hot_engines");
      json.Int(static_cast<long long>(info.hot_engines));
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
    return json.str();
  }

  if (op == "drop_dataset") {
    const std::string name = request.GetString("name");
    // Service-level drop: also invalidates the dataset's cached results,
    // so a later re-register under the same name starts clean.
    if (!service_.DropDataset(name)) {
      return MakeError(&request, op, error_code::kNotFound,
                       "unknown dataset: " + name);
    }
    JsonWriter json(false);
    BeginOk(json, request, op, request_id);
    json.Key("dataset");
    json.String(name);
    json.EndObject();
    return json.str();
  }

  if (op == "explain") {
    ExplainRequest explain;
    explain.dataset = request.GetString("dataset");
    if (explain.dataset.empty()) {
      return MakeError(&request, op, error_code::kBadRequest,
                       "missing 'dataset'");
    }
    std::string parse_error;
    if (!ParseQueryConfig(request, &explain.config, &parse_error)) {
      return MakeError(&request, op, error_code::kBadRequest, parse_error);
    }
    explain.tenant = request.GetString("tenant");
    explain.include_trendlines = request.GetBool("trendlines", false);
    explain.include_k_curve = request.GetBool("k_curve", true);
    explain.trace = request.GetBool("trace", false);
    const ExplainResponse response = service_.Explain(explain);
    MaybeLogSlowQuery(op, request_id, explain.dataset, /*session=*/0,
                      explain.tenant, response);
    if (!response.ok) {
      return MakeError(&request, op, response.error_code, response.error,
                       response.retry_after_ms);
    }
    JsonWriter json(false);
    BeginOk(json, request, op, request_id);
    json.Key("dataset");
    json.String(explain.dataset);
    json.Key("cache_hit");
    json.Bool(response.cache_hit);
    json.Key("latency_ms");
    json.Number(response.latency_ms);
    EmitTrace(json, response.trace);
    json.Key("result");
    json.Raw(response.json);
    json.EndObject();
    return json.str();
  }

  if (op == "recommend") {
    const std::string dataset = request.GetString("dataset");
    if (dataset.empty()) {
      return MakeError(&request, op, error_code::kBadRequest,
                       "missing 'dataset'");
    }
    AggregateFunction aggregate = AggregateFunction::kSum;
    const std::string agg = request.GetString("agg", "sum");
    if (!ParseAggregate(agg, &aggregate)) {
      return MakeError(&request, op, error_code::kBadRequest,
                       "unknown aggregate: " + agg);
    }
    const ExplainService::RecommendResponse response = service_.Recommend(
        dataset, aggregate, request.GetString("measure"),
        request.GetInt("m", 3));
    if (!response.ok) {
      return MakeError(&request, op, response.error_code, response.error);
    }
    JsonWriter json(false);
    BeginOk(json, request, op, request_id);
    json.Key("dataset");
    json.String(dataset);
    json.Key("recommendations");
    json.BeginArray();
    for (const ExplainByRecommendation& rec : response.recommendations) {
      json.BeginObject();
      json.Key("dimension");
      json.String(rec.dimension);
      json.Key("concentration");
      json.Number(rec.concentration);
      json.Key("cardinality");
      json.Int(static_cast<long long>(rec.cardinality));
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
    return json.str();
  }

  if (op == "open_session") {
    const std::string dataset = request.GetString("dataset");
    if (dataset.empty()) {
      return MakeError(&request, op, error_code::kBadRequest,
                       "missing 'dataset'");
    }
    TSExplainConfig config;
    std::string parse_error;
    if (!ParseQueryConfig(request, &config, &parse_error)) {
      return MakeError(&request, op, error_code::kBadRequest, parse_error);
    }
    std::string error;
    const uint64_t session = service_.OpenSession(dataset, config, &error);
    if (session == 0) {
      return MakeError(&request, op, error_code::kInvalidQuery, error);
    }
    JsonWriter json(false);
    BeginOk(json, request, op, request_id);
    json.Key("session");
    json.Int(static_cast<long long>(session));
    json.Key("n");
    json.Int(service_.SessionLength(session));
    const std::string log_path = service_.SessionLogPath(session);
    if (!log_path.empty()) {
      // The crash-recovery log (pid-scoped name — clients must not guess
      // it); pass it to recover_session after a crash.
      json.Key("log");
      json.String(log_path);
    }
    json.EndObject();
    return json.str();
  }

  if (op == "append") {
    uint64_t session = 0;
    std::string error;
    if (!ParseSessionId(request, &session, &error)) {
      return MakeError(&request, op, error_code::kBadRequest, error);
    }
    const std::string label = request.GetString("label");
    if (label.empty()) {
      return MakeError(&request, op, error_code::kBadRequest,
                       "missing 'label'");
    }
    const JsonValue* rows_json = request.Find("rows");
    if (!rows_json || !rows_json->IsArray()) {
      return MakeError(&request, op, error_code::kBadRequest,
                       "'rows' must be an array");
    }
    std::vector<StreamRow> rows;
    rows.reserve(rows_json->array().size());
    for (const JsonValue& row_json : rows_json->array()) {
      StreamRow row;
      bool dims_ok = false;
      row.dims = row_json.GetStringArray("dims", &dims_ok);
      const JsonValue* measures = row_json.Find("measures");
      if (!row_json.IsObject() || !dims_ok || !measures ||
          !measures->IsArray()) {
        return MakeError(&request, op, error_code::kBadRequest,
                         "each row needs 'dims' (strings) and 'measures' "
                         "(numbers)");
      }
      for (const JsonValue& m : measures->array()) {
        if (!m.IsNumber()) {
          return MakeError(&request, op, error_code::kBadRequest,
                           "'measures' entries must be numbers");
        }
        row.measures.push_back(m.AsDouble());
      }
      rows.push_back(std::move(row));
    }
    if (!service_.Append(session, label, rows, &error)) {
      const bool unknown = error.rfind("unknown session", 0) == 0;
      return MakeError(&request, op,
                       unknown ? error_code::kNotFound
                               : error_code::kBadRequest,
                       error);
    }
    JsonWriter json(false);
    BeginOk(json, request, op, request_id);
    json.Key("session");
    json.Int(static_cast<long long>(session));
    json.Key("n");
    json.Int(service_.SessionLength(session));
    json.Key("rebuilt");
    json.Bool(service_.SessionLastAppendRebuilt(session));
    json.EndObject();
    return json.str();
  }

  if (op == "explain_session") {
    uint64_t session = 0;
    std::string error;
    if (!ParseSessionId(request, &session, &error)) {
      return MakeError(&request, op, error_code::kBadRequest, error);
    }
    const std::string tenant = request.GetString("tenant");
    const ExplainResponse response = service_.ExplainSession(
        session, request.GetBool("trendlines", false),
        request.GetBool("k_curve", true), tenant,
        request.GetBool("trace", false));
    MaybeLogSlowQuery(op, request_id, /*dataset=*/"", session, tenant,
                      response);
    if (!response.ok) {
      return MakeError(&request, op, response.error_code, response.error,
                       response.retry_after_ms);
    }
    JsonWriter json(false);
    BeginOk(json, request, op, request_id);
    json.Key("session");
    json.Int(static_cast<long long>(session));
    json.Key("n");
    json.Int(service_.SessionLength(session));
    json.Key("cache_hit");
    json.Bool(response.cache_hit);
    json.Key("latency_ms");
    json.Number(response.latency_ms);
    EmitTrace(json, response.trace);
    json.Key("result");
    json.Raw(response.json);
    json.EndObject();
    return json.str();
  }

  if (op == "close_session") {
    uint64_t session = 0;
    std::string error;
    if (!ParseSessionId(request, &session, &error)) {
      return MakeError(&request, op, error_code::kBadRequest, error);
    }
    if (!service_.CloseSession(session)) {
      return MakeError(&request, op, error_code::kNotFound,
                       StrFormat("unknown session: %llu",
                                 static_cast<unsigned long long>(session)));
    }
    JsonWriter json(false);
    BeginOk(json, request, op, request_id);
    json.Key("session");
    json.Int(static_cast<long long>(session));
    json.EndObject();
    return json.str();
  }

  if (op == "save_cache" || op == "load_cache") {
    const std::string path = request.GetString("path");
    if (path.empty()) {
      return MakeError(&request, op, error_code::kBadRequest,
                       "missing 'path'");
    }
    std::string error;
    size_t primary = 0;
    size_t fenced = 0;
    const bool ok = op == "save_cache"
                        ? service_.SaveCache(path, &error, &primary)
                        : service_.LoadCache(path, &error, &primary,
                                             &fenced);
    if (!ok) {
      return MakeError(&request, op, error_code::kBadRequest, error);
    }
    JsonWriter json(false);
    BeginOk(json, request, op, request_id);
    json.Key("path");
    json.String(path);
    json.Key(op == "save_cache" ? "saved" : "restored");
    json.Int(static_cast<long long>(primary));
    if (op == "load_cache") {
      json.Key("fenced");
      json.Int(static_cast<long long>(fenced));
    }
    json.EndObject();
    return json.str();
  }

  if (op == "recover_session") {
    const std::string path = request.GetString("path");
    if (path.empty()) {
      return MakeError(&request, op, error_code::kBadRequest,
                       "missing 'path'");
    }
    std::string error;
    bool torn = false;
    int replayed = 0;
    const uint64_t session =
        service_.RecoverSession(path, &error, &torn, &replayed);
    if (session == 0) {
      const bool unknown = error.rfind("unknown dataset", 0) == 0;
      return MakeError(&request, op,
                       unknown ? error_code::kNotFound
                               : error_code::kBadRequest,
                       error);
    }
    JsonWriter json(false);
    BeginOk(json, request, op, request_id);
    json.Key("session");
    json.Int(static_cast<long long>(session));
    json.Key("n");
    json.Int(service_.SessionLength(session));
    json.Key("replayed");
    json.Int(replayed);
    json.Key("torn");
    json.Bool(torn);
    const std::string log_path = service_.SessionLogPath(session);
    if (!log_path.empty()) {
      json.Key("log");
      json.String(log_path);
    }
    json.EndObject();
    return json.str();
  }

  if (op == "healthz") {
    // Liveness probe. Reads ONLY the watchdog's own mutex and the wall
    // clock — never the registry, cache, admission, or engine mutexes —
    // so it answers even while every pool worker is wedged inside a
    // compute (the transport dispatches it inline, ahead of the barrier
    // drain, for the same reason).
    QueryWatchdog::Status status;
    if (introspection_.watchdog != nullptr) {
      status = introspection_.watchdog->Scan();
    }
    JsonWriter json(false);
    BeginOk(json, request, op, request_id);
    json.Key("status");
    json.String(status.stuck.empty() ? "ok" : "stuck");
    json.Key("uptime_seconds");
    json.Number(UptimeSeconds(introspection_.start_wall_ms));
    json.Key("inflight");  // includes this healthz request itself
    json.Int(static_cast<long long>(status.inflight));
    json.Key("stuck");
    json.Int(static_cast<long long>(status.stuck.size()));
    if (!status.stuck.empty()) {
      json.Key("stuck_queries");
      json.BeginArray();
      for (const QueryWatchdog::StuckQuery& query : status.stuck) {
        json.BeginObject();
        json.Key("request_id");
        json.Int(static_cast<long long>(query.request_id));
        json.Key("op");
        json.String(query.op);
        json.Key("age_ms");
        json.Number(query.age_ms);
        json.EndObject();
      }
      json.EndArray();
    }
    json.EndObject();
    return json.str();
  }

  if (op == "state") {
    // Operator introspection: everything an on-call wants in one shot —
    // build identity, datasets with content fingerprints, live sessions,
    // admission occupancy vs limits, cache bytes, watchdog state. Unlike
    // healthz this DOES take service-wide mutexes (briefly), so it runs
    // as a normal barrier op.
    const ServiceStats stats = service_.Stats();
    QueryWatchdog::Status watchdog_status;
    double stuck_after_ms = 0.0;
    if (introspection_.watchdog != nullptr) {
      watchdog_status = introspection_.watchdog->Scan();
      stuck_after_ms = introspection_.watchdog->stuck_after_ms();
    }
    JsonWriter json(false);
    BeginOk(json, request, op, request_id);
    json.Key("uptime_seconds");
    json.Number(UptimeSeconds(introspection_.start_wall_ms));
    EmitBuildInfo(json, introspection_.pool_size);
    json.Key("datasets");
    json.BeginArray();
    for (const DatasetInfo& info : service_.registry().List()) {
      json.BeginObject();
      json.Key("name");
      json.String(info.name);
      json.Key("source");
      json.String(info.source);
      json.Key("rows");
      json.Int(static_cast<long long>(info.rows));
      json.Key("time_buckets");
      json.Int(static_cast<long long>(info.time_buckets));
      json.Key("fingerprint");
      json.String(StrFormat(
          "%016llx", static_cast<unsigned long long>(info.fingerprint)));
      json.Key("hot_engines");
      json.Int(static_cast<long long>(info.hot_engines));
      json.EndObject();
    }
    json.EndArray();
    json.Key("open_sessions");
    json.Int(static_cast<long long>(stats.open_sessions));
    json.Key("tenants");
    json.Int(static_cast<long long>(stats.tenants));
    json.Key("tenant_bytes");
    json.BeginObject();
    for (const auto& [tenant, bytes] : stats.tenant_bytes) {
      json.Key(tenant);
      json.Int(static_cast<long long>(bytes));
    }
    json.EndObject();
    json.Key("admission");
    json.BeginObject();
    json.Key("active");
    json.Int(static_cast<long long>(stats.admission.active));
    json.Key("queued");
    json.Int(static_cast<long long>(stats.admission.queued));
    json.Key("peak_active");
    json.Int(static_cast<long long>(stats.admission.peak_active));
    json.Key("peak_queued");
    json.Int(static_cast<long long>(stats.admission.peak_queued));
    json.Key("max_concurrent");
    json.Int(service_.admission().max_concurrent());
    json.Key("queue_depth");
    json.Int(service_.admission().queue_depth());
    json.EndObject();
    json.Key("cache");
    json.BeginObject();
    json.Key("entries");
    json.Int(static_cast<long long>(stats.cache.entries));
    json.Key("bytes_used");
    json.Int(static_cast<long long>(stats.cache.bytes_used));
    json.Key("capacity_bytes");
    json.Int(static_cast<long long>(stats.cache.capacity_bytes));
    json.EndObject();
    json.Key("watchdog");
    json.BeginObject();
    json.Key("inflight");
    json.Int(static_cast<long long>(watchdog_status.inflight));
    json.Key("stuck");
    json.Int(static_cast<long long>(watchdog_status.stuck.size()));
    json.Key("stuck_after_ms");
    json.Number(stuck_after_ms);
    json.EndObject();
    json.EndObject();
    return json.str();
  }

  if (op == "stats") {
    // Counter and gauge fields are sourced from the process-wide metrics
    // registry — the same series the `metrics` op exports — so the two
    // views can never disagree. Structural fields (datasets, sessions,
    // tenants, capacity) stay with the service. Field names and order
    // are byte-compatible with the pre-registry wire shape (asserted by
    // tests/server_smoke_test.sh).
    const ServiceStats stats = service_.Stats();
    const MetricsSnapshot snapshot = MetricRegistry::Global().Snapshot();
    const auto counter = [&snapshot](const char* name) -> long long {
      const uint64_t* value = snapshot.FindCounter(name);
      return value ? static_cast<long long>(*value) : 0;
    };
    const auto gauge = [&snapshot](const char* name) -> long long {
      const int64_t* value = snapshot.FindGauge(name);
      return value ? static_cast<long long>(*value) : 0;
    };
    JsonWriter json(false);
    BeginOk(json, request, op, request_id);
    json.Key("datasets");
    json.Int(static_cast<long long>(stats.datasets));
    json.Key("hot_engines");
    json.Int(static_cast<long long>(stats.hot_engines));
    json.Key("open_sessions");
    json.Int(static_cast<long long>(stats.open_sessions));
    json.Key("tenants");
    json.Int(static_cast<long long>(stats.tenants));
    json.Key("tenant_bytes");
    json.BeginObject();
    for (const auto& [tenant, bytes] : stats.tenant_bytes) {
      json.Key(tenant);
      json.Int(static_cast<long long>(bytes));
    }
    json.EndObject();
    json.Key("admission");
    json.BeginObject();
    json.Key("admitted");
    json.Int(counter("admission.admitted"));
    json.Key("coalesced");
    json.Int(counter("admission.coalesced"));
    json.Key("shed_overload");
    json.Int(counter("admission.shed_overload"));
    json.Key("shed_tenant");
    json.Int(counter("admission.shed_tenant"));
    json.Key("backlog_shed");
    json.Int(counter("admission.backlog_shed"));
    json.Key("active");
    json.Int(gauge("admission.active"));
    json.Key("queued");
    json.Int(gauge("admission.queued"));
    json.Key("peak_active");
    json.Int(gauge("admission.peak_active"));
    json.Key("peak_queued");
    json.Int(gauge("admission.peak_queued"));
    json.EndObject();
    json.Key("cache");
    json.BeginObject();
    json.Key("hits");
    json.Int(counter("cache.hits"));
    json.Key("misses");
    json.Int(counter("cache.misses"));
    json.Key("coalesced");
    json.Int(counter("cache.coalesced"));
    json.Key("evictions");
    json.Int(counter("cache.evictions"));
    json.Key("budget_evictions");
    json.Int(counter("cache.budget_evictions"));
    json.Key("invalidations");
    json.Int(counter("cache.invalidations"));
    json.Key("entries");
    json.Int(gauge("cache.entries"));
    json.Key("bytes_used");
    json.Int(gauge("cache.bytes_used"));
    json.Key("capacity_bytes");
    json.Int(static_cast<long long>(stats.cache.capacity_bytes));
    json.EndObject();
    json.EndObject();
    return json.str();
  }

  if (op == "metrics") {
    // Scrape endpoint: the registry's full contents, as structured JSON
    // (default) or as a Prometheus text exposition embedded in the
    // envelope's "text" field (docs/OBSERVABILITY.md has the scrape
    // recipe).
    const std::string format = request.GetString("format", "json");
    if (format != "json" && format != "prometheus") {
      return MakeError(&request, op, error_code::kBadRequest,
                       "unknown format: " + format +
                           " (expected 'json' or 'prometheus')");
    }
    const MetricsSnapshot snapshot = MetricRegistry::Global().Snapshot();
    JsonWriter json(false);
    BeginOk(json, request, op, request_id);
    json.Key("uptime_seconds");
    json.Number(UptimeSeconds(introspection_.start_wall_ms));
    EmitBuildInfo(json, introspection_.pool_size);
    if (format == "prometheus") {
      json.Key("format");
      json.String("prometheus");
      json.Key("text");
      json.String(RenderPrometheusText(snapshot));
    } else {
      json.Key("metrics");
      json.Raw(RenderMetricsJson(snapshot));
    }
    json.EndObject();
    return json.str();
  }

  if (op == "metrics_history") {
    // Windowed time-series view of the registry (docs/OBSERVABILITY.md,
    // "Self-observation"). Optional fields: "format" ("json"|"csv"),
    // "last_n" (trailing ticks only), "prefix" (series-name filter),
    // "sample" (true = take one synchronous tick first — how tests and
    // the soak harness get deterministic ticks without a live sampler),
    // and "export_as" (materialize the window as a registered dataset so
    // explain can run over the server's own telemetry).
    MetricsHistory* history = introspection_.history;
    if (history == nullptr) {
      return MakeError(&request, op, error_code::kBadRequest,
                       "metrics history is not enabled on this server");
    }
    const std::string format = request.GetString("format", "json");
    if (format != "json" && format != "csv") {
      return MakeError(&request, op, error_code::kBadRequest,
                       "unknown format: " + format +
                           " (expected 'json' or 'csv')");
    }
    const int last_n_raw = request.GetInt("last_n", 0);
    if (last_n_raw < 0) {
      return MakeError(&request, op, error_code::kBadRequest,
                       "last_n must be >= 0");
    }
    const size_t last_n = static_cast<size_t>(last_n_raw);
    const std::string prefix = request.GetString("prefix");
    if (request.GetBool("sample", false)) history->SampleNow();
    const std::string export_as = request.GetString("export_as");
    if (!export_as.empty()) {
      std::shared_ptr<const Table> table =
          history->ExportAsTable(last_n, prefix);
      if (table == nullptr) {
        return MakeError(&request, op, error_code::kBadRequest,
                         "metrics history has fewer than two ticks; "
                         "nothing to export");
      }
      std::string error;
      DatasetInfo info;
      if (!service_.registry().RegisterTable(export_as, std::move(table),
                                             "<metrics_history>", &error,
                                             &info)) {
        return MakeError(&request, op, error_code::kBadRequest, error);
      }
      JsonWriter json(false);
      BeginOk(json, request, op, request_id);
      json.Key("dataset");
      json.String(info.name);
      json.Key("rows");
      json.Int(static_cast<long long>(info.rows));
      json.Key("time_buckets");
      json.Int(static_cast<long long>(info.time_buckets));
      json.EndObject();
      return json.str();
    }
    const HistoryWindow window = history->Window(last_n, prefix);
    JsonWriter json(false);
    BeginOk(json, request, op, request_id);
    if (format == "csv") {
      json.Key("format");
      json.String("csv");
      json.Key("text");
      json.String(RenderHistoryCsv(window));
    } else {
      json.Key("history");
      json.Raw(RenderHistoryJson(window));
    }
    json.EndObject();
    return json.str();
  }

  if (op == "shutdown") {
    // The transport watches for this op and stops reading afterwards.
    JsonWriter json(false);
    BeginOk(json, request, op, request_id);
    json.EndObject();
    return json.str();
  }

  return MakeError(&request, op, error_code::kUnknownOp,
                   op.empty() ? "missing 'op'" : "unknown op: " + op);
}

}  // namespace tsexplain
