#include "src/service/watchdog.h"

#include <algorithm>
#include <utility>

#include "src/common/metrics.h"

namespace tsexplain {
namespace {

// One registration site per name (lint R4); references cached so the
// per-request path never takes the registry mutex.
struct WatchdogMetrics {
  Gauge& inflight = MetricRegistry::Global().GetGauge("query.inflight");
  Gauge& stuck = MetricRegistry::Global().GetGauge("query.stuck");

  static WatchdogMetrics& Get() {
    static WatchdogMetrics metrics;
    return metrics;
  }
};

}  // namespace

QueryWatchdog::QueryWatchdog() : QueryWatchdog(Options()) {}

QueryWatchdog::QueryWatchdog(Options options) : options_(options) {
  WatchdogMetrics::Get();  // register the gauges at construction
}

void QueryWatchdog::Begin(uint64_t request_id, const std::string& op) {
  MutexLock lock(mu_);
  Inflight& entry = inflight_[request_id];
  entry.op = op;
  entry.start = std::chrono::steady_clock::now();
}

void QueryWatchdog::End(uint64_t request_id) {
  MutexLock lock(mu_);
  inflight_.erase(request_id);
}

QueryWatchdog::Status QueryWatchdog::Scan() {
  Status status;
  const auto now = std::chrono::steady_clock::now();
  {
    MutexLock lock(mu_);
    status.inflight = inflight_.size();
    for (const auto& [request_id, entry] : inflight_) {
      const double age_ms =
          std::chrono::duration<double, std::milli>(now - entry.start)
              .count();
      if (age_ms < options_.stuck_after_ms) continue;
      StuckQuery stuck;
      stuck.request_id = request_id;
      stuck.op = entry.op;
      stuck.age_ms = age_ms;
      status.stuck.push_back(std::move(stuck));
    }
  }
  // Oldest first: map order is by ascending request id, so re-sort by
  // age (ids are monotone, but recovered/retried ops can interleave).
  std::sort(status.stuck.begin(), status.stuck.end(),
            [](const StuckQuery& a, const StuckQuery& b) {
              return a.age_ms > b.age_ms;
            });
  WatchdogMetrics& metrics = WatchdogMetrics::Get();
  metrics.inflight.Set(static_cast<int64_t>(status.inflight));
  metrics.stuck.Set(static_cast<int64_t>(status.stuck.size()));
  return status;
}

}  // namespace tsexplain
