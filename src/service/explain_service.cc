#include "src/service/explain_service.h"

#include <algorithm>
#include <utility>

#include "src/common/strings.h"
#include "src/common/timer.h"
#include "src/service/query_key.h"

namespace tsexplain {
namespace {

// Schema-level validation: everything that would otherwise trip a
// TSE_CHECK inside the engine must be rejected here with an error string.
// Also fills an empty explain-by list with the recommended ordering
// (mirrors the CLI's default).
//
// The explain-by list is rewritten to its CANONICAL spelling (sorted,
// deduplicated) — the same normalization the cache key applies. Results
// can depend on attribute order (ties in the top-m break by attribute
// position), so the engine must be built from exactly the spelling the
// key describes or differently-ordered queries would alias one cache
// entry to first-arrival results. Service semantics are therefore
// explain-by-order invariant by construction.
bool ValidateAndNormalize(const Table& table, TSExplainConfig* config,
                          std::string* error) {
  if (table.num_time_buckets() < 3) {
    *error = "dataset needs at least three time buckets to segment";
    return false;
  }
  if (!config->measure.empty() &&
      table.schema().MeasureIndex(config->measure) < 0) {
    *error = "unknown measure: " + config->measure;
    return false;
  }
  if (config->explain_by_names.empty()) {
    for (const auto& rec :
         RecommendExplainBy(table, config->aggregate, config->measure,
                            config->m > 0 ? config->m : 3)) {
      config->explain_by_names.push_back(rec.dimension);
    }
    if (config->explain_by_names.empty()) {
      *error = "dataset has no dimensions to explain by";
      return false;
    }
  }
  std::sort(config->explain_by_names.begin(),
            config->explain_by_names.end());
  config->explain_by_names.erase(
      std::unique(config->explain_by_names.begin(),
                  config->explain_by_names.end()),
      config->explain_by_names.end());
  for (const std::string& name : config->explain_by_names) {
    if (table.schema().DimensionIndex(name) == kInvalidAttrId) {
      *error = "unknown explain-by dimension: " + name;
      return false;
    }
  }
  struct Bound {
    const char* field;
    int value;
    int min;
  };
  for (const Bound& b :
       {Bound{"order", config->max_order, 1}, Bound{"m", config->m, 1},
        Bound{"k", config->fixed_k, 0}, Bound{"max_k", config->max_k, 1},
        Bound{"smooth", config->smooth_window, 1},
        Bound{"threads", config->threads, 0},
        Bound{"initial_guess", config->initial_guess, 1}}) {
    if (b.value < b.min) {
      *error = StrFormat("%s must be >= %d, got %d", b.field, b.min,
                         b.value);
      return false;
    }
  }
  if (config->use_filter &&
      (config->filter_ratio <= 0.0 || config->filter_ratio > 1.0)) {
    *error = "filter_ratio must be in (0, 1]";
    return false;
  }
  return true;
}

std::string ReportSuffix(bool trendlines, bool k_curve) {
  return StrFormat("|rep=t%dc%d", trendlines ? 1 : 0, k_curve ? 1 : 0);
}

ReportOptions WireReportOptions(bool trendlines, bool k_curve) {
  ReportOptions options;
  options.include_trendlines = trendlines;
  options.include_k_curve = k_curve;
  options.pretty = false;
  return options;
}

ExplainResponse ErrorResponse(const char* code, std::string message) {
  ExplainResponse response;
  response.ok = false;
  response.error_code = code;
  response.error = std::move(message);
  return response;
}

ExplainResponse ServedResponse(const std::string& cache_key,
                               const ResultCache::ValuePtr& value,
                               bool cache_hit, double latency_ms) {
  ExplainResponse response;
  response.ok = true;
  response.query_key = cache_key;
  response.cache_hit = cache_hit;
  response.result = value->result;
  response.json = value->json;
  response.latency_ms = latency_ms;
  return response;
}

}  // namespace

ExplainService::ExplainService(ServiceOptions options)
    : cache_(options.cache_capacity_bytes, options.cache_shards),
      admission_(options.admission),
      tenant_quotas_(cache_,
                     TenantQuotaOptions{options.tenant_cache_budget_bytes}) {}

bool ExplainService::DropDataset(const std::string& name) {
  if (!registry_.Drop(name)) return false;
  // Open sessions keep their own table copy and session/<id>/ keys; only
  // the dataset-level entries go — in the shared namespace AND in every
  // known tenant's namespace (tenant keys prepend "tenant/<id>/", so the
  // bare dataset prefix would miss them). One multi-prefix pass: the
  // scan cost stays O(entries) however many tenants exist.
  std::vector<std::string> prefixes = tenant_quotas_.KnownTenantPrefixes();
  for (std::string& prefix : prefixes) prefix += DatasetKeyPrefix(name);
  prefixes.push_back(DatasetKeyPrefix(name));
  cache_.InvalidatePrefixes(prefixes);
  return true;
}

ExplainResponse ExplainService::AdmitAndCompute(
    const std::string& cache_key, const std::string& tenant,
    int requested_threads,
    const std::function<ResultCache::ValuePtr(int granted_threads,
                                              std::string* error)>& compute) {
  Timer timer;
  // A batched (coalesced) outcome normally lands on the leader's cached
  // value; when the leader failed (or its entry was evicted instantly)
  // we re-enter admission as a potential leader ourselves. Two re-entries
  // are plenty: repeated leader failures mean the query itself fails.
  std::string compute_error;
  for (int attempt = 0; attempt < 3; ++attempt) {
    AdmissionController::Ticket ticket =
        admission_.Admit(cache_key, tenant, requested_threads);
    switch (ticket.outcome()) {
      case AdmissionController::Outcome::kShedOverload: {
        ExplainResponse response = ErrorResponse(
            error_code::kOverloaded,
            "server overloaded: admission queue full; retry later");
        response.retry_after_ms = ticket.retry_after_ms();
        return response;
      }
      case AdmissionController::Outcome::kShedTenant: {
        ExplainResponse response = ErrorResponse(
            error_code::kQuotaExceeded,
            "tenant '" + tenant + "' is at its in-flight quota");
        response.retry_after_ms = ticket.retry_after_ms();
        return response;
      }
      case AdmissionController::Outcome::kCoalesced: {
        const ResultCache::ValuePtr value = cache_.Lookup(cache_key);
        if (value) {
          return ServedResponse(cache_key, value, /*cache_hit=*/true,
                                timer.ElapsedMs());
        }
        continue;  // leader failed: retry admission
      }
      case AdmissionController::Outcome::kAdmitted: {
        bool was_hit = false;
        const ResultCache::ValuePtr value = cache_.GetOrCompute(
            cache_key,
            [&]() -> ResultCache::ValuePtr {
              return compute(ticket.granted_threads(), &compute_error);
            },
            &was_hit);
        if (!value) {
          return ErrorResponse(error_code::kInternal,
                               compute_error.empty() ? "computation failed"
                                                     : compute_error);
        }
        ExplainResponse response =
            ServedResponse(cache_key, value, was_hit, timer.ElapsedMs());
        return response;
      }
    }
  }
  return ErrorResponse(error_code::kInternal,
                       compute_error.empty()
                           ? "query kept failing under coalesced retries"
                           : compute_error);
}

ExplainResponse ExplainService::Explain(const ExplainRequest& request) {
  Timer timer;
  if (!request.tenant.empty() && !IsValidTenantId(request.tenant)) {
    return ErrorResponse(
        error_code::kBadRequest,
        "invalid tenant id (use [A-Za-z0-9._:-], at most 64 chars)");
  }
  const DatasetRegistry::TableRef ref = registry_.GetRef(request.dataset);
  if (!ref.table) {
    return ErrorResponse(error_code::kNotFound,
                         "unknown dataset: " + request.dataset);
  }
  TSExplainConfig config = request.config;
  std::string validation_error;
  if (!ValidateAndNormalize(*ref.table, &config, &validation_error)) {
    return ErrorResponse(error_code::kInvalidQuery, validation_error);
  }

  const CanonicalQuery canonical =
      CanonicalizeQuery(request.dataset, config);
  // The registration uid fences drop + re-register races: a computation
  // against the old table can only ever land under the old uid's key,
  // which no post-re-register request asks for (it ages out via LRU).
  // The tenant prefix namespaces the entry so per-tenant cache budgets
  // can scope evictions to exactly this tenant's keys.
  const std::string cache_key =
      TenantKeyPrefix(request.tenant) + canonical.query_key +
      StrFormat("|uid=%llu", static_cast<unsigned long long>(ref.uid)) +
      ReportSuffix(request.include_trendlines, request.include_k_curve);
  if (!request.tenant.empty()) tenant_quotas_.EnsureTenant(request.tenant);

  // Hot path: cached results bypass admission — overload can defer cold
  // work but never a hit.
  if (const ResultCache::ValuePtr value = cache_.Lookup(cache_key)) {
    return ServedResponse(cache_key, value, /*cache_hit=*/true,
                          timer.ElapsedMs());
  }

  return AdmitAndCompute(
      cache_key, request.tenant, ResolveThreadCount(config.threads),
      [&](int granted_threads,
          std::string* compute_error) -> ResultCache::ValuePtr {
        // The admission grant replaces the requested thread count (it is
        // a ceiling, not a demand); results are identical either way.
        TSExplainConfig run_config = config;
        run_config.threads = granted_threads;
        std::string engine_error;
        EngineHandle handle = registry_.GetOrBuildEngine(
            request.dataset, canonical.engine_key, run_config,
            ref.table.get(), &engine_error);
        if (!handle.ok()) {
          *compute_error = engine_error;
          return nullptr;
        }
        const SegmentationSpec spec =
            SegmentationSpec::FromConfig(run_config);
        auto cached = std::make_shared<CachedResult>();
        {
          // Run mutates the engine's explanation caches; serialize per
          // engine. Distinct engines still run fully in parallel.
          std::lock_guard<std::mutex> lock(*handle.mu);
          cached->result =
              std::make_shared<TSExplainResult>(handle.engine->Run(spec));
          cached->json = RenderJsonReport(
              handle.engine->cube(), *cached->result,
              WireReportOptions(request.include_trendlines,
                                request.include_k_curve));
        }
        return cached;
      });
}

ExplainService::RecommendResponse ExplainService::Recommend(
    const std::string& dataset, AggregateFunction aggregate,
    const std::string& measure, int m) {
  RecommendResponse response;
  const std::shared_ptr<const Table> table = registry_.Get(dataset);
  if (!table) {
    response.error_code = error_code::kNotFound;
    response.error = "unknown dataset: " + dataset;
    return response;
  }
  if (!measure.empty() && table->schema().MeasureIndex(measure) < 0) {
    response.error_code = error_code::kInvalidQuery;
    response.error = "unknown measure: " + measure;
    return response;
  }
  if (m < 1) {
    response.error_code = error_code::kInvalidQuery;
    response.error = StrFormat("m must be >= 1, got %d", m);
    return response;
  }
  response.ok = true;
  response.recommendations = RecommendExplainBy(*table, aggregate, measure, m);
  return response;
}

uint64_t ExplainService::OpenSession(const std::string& dataset,
                                     const TSExplainConfig& config,
                                     std::string* error) {
  const std::shared_ptr<const Table> table = registry_.Get(dataset);
  if (!table) {
    *error = "unknown dataset: " + dataset;
    return 0;
  }
  TSExplainConfig normalized = config;
  if (!ValidateAndNormalize(*table, &normalized, error)) return 0;

  auto session = std::make_shared<Session>();
  session->dataset = dataset;
  session->config = normalized;
  // StreamingTSExplain copies the table: the session's view grows
  // independently of the immutable registered dataset.
  session->engine =
      std::make_unique<StreamingTSExplain>(*table, normalized);
  std::lock_guard<std::mutex> lock(sessions_mu_);
  session->id = next_session_id_++;
  sessions_.emplace(session->id, session);
  return session->id;
}

std::shared_ptr<ExplainService::Session> ExplainService::FindSession(
    uint64_t session_id) const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  const auto it = sessions_.find(session_id);
  return it == sessions_.end() ? nullptr : it->second;
}

bool ExplainService::Append(uint64_t session_id, const std::string& label,
                            const std::vector<StreamRow>& rows,
                            std::string* error) {
  const std::shared_ptr<Session> session = FindSession(session_id);
  if (!session) {
    *error = StrFormat("unknown session: %llu",
                       static_cast<unsigned long long>(session_id));
    return false;
  }
  std::lock_guard<std::mutex> lock(session->mu);
  const Schema& schema = session->engine->table().schema();
  for (const StreamRow& row : rows) {
    if (row.dims.size() != schema.num_dimensions() ||
        row.measures.size() != schema.num_measures()) {
      *error = StrFormat(
          "row shape mismatch: expected %zu dims + %zu measures, got %zu + "
          "%zu",
          schema.num_dimensions(), schema.num_measures(), row.dims.size(),
          row.measures.size());
      return false;
    }
  }
  session->engine->AppendBucket(label, rows);
  // New data makes this session's cached explanations stale — and ONLY
  // this session's: the prefix scopes the invalidation, so dataset-level
  // cache entries and other sessions are untouched (tested).
  cache_.InvalidatePrefix(StrFormat(
      "session/%llu/", static_cast<unsigned long long>(session_id)));
  return true;
}

ExplainResponse ExplainService::ExplainSession(uint64_t session_id,
                                               bool include_trendlines,
                                               bool include_k_curve,
                                               const std::string& tenant) {
  Timer timer;
  if (!tenant.empty() && !IsValidTenantId(tenant)) {
    return ErrorResponse(
        error_code::kBadRequest,
        "invalid tenant id (use [A-Za-z0-9._:-], at most 64 chars)");
  }
  const std::shared_ptr<Session> session = FindSession(session_id);
  if (!session) {
    return ErrorResponse(
        error_code::kNotFound,
        StrFormat("unknown session: %llu",
                  static_cast<unsigned long long>(session_id)));
  }
  std::lock_guard<std::mutex> lock(session->mu);
  if (session->engine->n() < 3) {
    return ErrorResponse(error_code::kInvalidQuery,
                         "session needs at least three time buckets");
  }
  // The key embeds the current length: an explain after an append can
  // never alias a pre-append entry even if an invalidation is lost.
  // Session keys stay OUTSIDE tenant namespaces (a session is already
  // private to its creator and appends must invalidate it wholesale),
  // but the request still counts against the tenant's in-flight cap.
  const std::string cache_key =
      StrFormat("session/%llu/n%d",
                static_cast<unsigned long long>(session_id),
                session->engine->n()) +
      ReportSuffix(include_trendlines, include_k_curve);
  if (const ResultCache::ValuePtr value = cache_.Lookup(cache_key)) {
    return ServedResponse(cache_key, value, /*cache_hit=*/true,
                          timer.ElapsedMs());
  }
  // Admission happens while holding the session mutex: every op on one
  // session is serialized anyway (that is the session contract), and the
  // slot taken here is released before any other session op can need it.
  return AdmitAndCompute(
      cache_key, tenant,
      ResolveThreadCount(session->config.threads),
      [&](int granted_threads,
          std::string* /*compute_error*/) -> ResultCache::ValuePtr {
        auto cached = std::make_shared<CachedResult>();
        cached->result = std::make_shared<TSExplainResult>(
            session->engine->Explain(granted_threads));
        cached->json = RenderJsonReport(
            session->engine->cube(), *cached->result,
            WireReportOptions(include_trendlines, include_k_curve));
        return cached;
      });
}

bool ExplainService::CloseSession(uint64_t session_id) {
  std::shared_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    const auto it = sessions_.find(session_id);
    if (it == sessions_.end()) return false;
    session = it->second;
    sessions_.erase(it);
  }
  cache_.InvalidatePrefix(StrFormat(
      "session/%llu/", static_cast<unsigned long long>(session_id)));
  return true;
}

int ExplainService::SessionLength(uint64_t session_id) const {
  const std::shared_ptr<Session> session = FindSession(session_id);
  if (!session) return -1;
  std::lock_guard<std::mutex> lock(session->mu);
  return session->engine->n();
}

bool ExplainService::SessionLastAppendRebuilt(uint64_t session_id) const {
  const std::shared_ptr<Session> session = FindSession(session_id);
  if (!session) return false;
  std::lock_guard<std::mutex> lock(session->mu);
  return session->engine->last_append_rebuilt();
}

ServiceStats ExplainService::Stats() const {
  ServiceStats stats;
  stats.datasets = registry_.List().size();
  stats.hot_engines = registry_.NumEngines();
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    stats.open_sessions = sessions_.size();
  }
  stats.tenants = tenant_quotas_.NumTenants();
  stats.cache = cache_.stats();
  stats.admission = admission_.stats();
  return stats;
}

std::future<ExplainResponse> ServiceExecutor::SubmitExplain(
    ExplainRequest request) {
  auto promise = std::make_shared<std::promise<ExplainResponse>>();
  std::future<ExplainResponse> future = promise->get_future();
  ExplainService* service = &service_;
  pool_.Submit([service, promise, request = std::move(request)] {
    promise->set_value(service->Explain(request));
  });
  return future;
}

std::future<ExplainResponse> ServiceExecutor::SubmitSessionExplain(
    uint64_t session_id) {
  auto promise = std::make_shared<std::promise<ExplainResponse>>();
  std::future<ExplainResponse> future = promise->get_future();
  ExplainService* service = &service_;
  pool_.Submit([service, promise, session_id] {
    promise->set_value(service->ExplainSession(session_id));
  });
  return future;
}

}  // namespace tsexplain
