#include "src/service/explain_service.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include <unistd.h>

#include <cstdio>

#include "src/common/metrics.h"
#include "src/common/strings.h"
#include "src/common/timer.h"
#include "src/service/query_key.h"
#include "src/storage/cache_snapshot.h"
#include "src/storage/table_snapshot.h"

namespace tsexplain {
namespace {

// Schema-level validation: everything that would otherwise trip a
// TSE_CHECK inside the engine must be rejected here with an error string.
// Also fills an empty explain-by list with the recommended ordering
// (mirrors the CLI's default).
//
// The explain-by list is rewritten to its CANONICAL spelling (sorted,
// deduplicated) — the same normalization the cache key applies. Results
// can depend on attribute order (ties in the top-m break by attribute
// position), so the engine must be built from exactly the spelling the
// key describes or differently-ordered queries would alias one cache
// entry to first-arrival results. Service semantics are therefore
// explain-by-order invariant by construction.
bool ValidateAndNormalize(const Table& table, TSExplainConfig* config,
                          std::string* error) {
  if (table.num_time_buckets() < 3) {
    *error = "dataset needs at least three time buckets to segment";
    return false;
  }
  if (!config->measure.empty() &&
      table.schema().MeasureIndex(config->measure) < 0) {
    *error = "unknown measure: " + config->measure;
    return false;
  }
  if (config->explain_by_names.empty()) {
    for (const auto& rec :
         RecommendExplainBy(table, config->aggregate, config->measure,
                            config->m > 0 ? config->m : 3)) {
      config->explain_by_names.push_back(rec.dimension);
    }
    if (config->explain_by_names.empty()) {
      *error = "dataset has no dimensions to explain by";
      return false;
    }
  }
  std::sort(config->explain_by_names.begin(),
            config->explain_by_names.end());
  config->explain_by_names.erase(
      std::unique(config->explain_by_names.begin(),
                  config->explain_by_names.end()),
      config->explain_by_names.end());
  for (const std::string& name : config->explain_by_names) {
    if (table.schema().DimensionIndex(name) == kInvalidAttrId) {
      *error = "unknown explain-by dimension: " + name;
      return false;
    }
  }
  struct Bound {
    const char* field;
    int value;
    int min;
  };
  for (const Bound& b :
       {Bound{"order", config->max_order, 1}, Bound{"m", config->m, 1},
        Bound{"k", config->fixed_k, 0}, Bound{"max_k", config->max_k, 1},
        Bound{"smooth", config->smooth_window, 1},
        Bound{"threads", config->threads, 0},
        Bound{"initial_guess", config->initial_guess, 1}}) {
    if (b.value < b.min) {
      *error = StrFormat("%s must be >= %d, got %d", b.field, b.min,
                         b.value);
      return false;
    }
  }
  if (config->use_filter &&
      (config->filter_ratio <= 0.0 || config->filter_ratio > 1.0)) {
    *error = "filter_ratio must be in (0, 1]";
    return false;
  }
  return true;
}

std::string ReportSuffix(bool trendlines, bool k_curve) {
  return StrFormat("|rep=t%dc%d", trendlines ? 1 : 0, k_curve ? 1 : 0);
}

ReportOptions WireReportOptions(bool trendlines, bool k_curve) {
  ReportOptions options;
  options.include_trendlines = trendlines;
  options.include_k_curve = k_curve;
  options.pretty = false;
  return options;
}

ExplainResponse ErrorResponse(const char* code, std::string message) {
  ExplainResponse response;
  response.ok = false;
  response.error_code = code;
  response.error = std::move(message);
  return response;
}

ExplainResponse ServedResponse(const std::string& cache_key,
                               const ResultCache::ValuePtr& value,
                               bool cache_hit, double latency_ms) {
  ExplainResponse response;
  response.ok = true;
  response.query_key = cache_key;
  response.cache_hit = cache_hit;
  response.result = value->result;
  response.json = value->json;
  response.latency_ms = latency_ms;
  return response;
}

// End-to-end service latency (docs/OBSERVABILITY.md). hot = served from
// a direct cache Lookup without touching admission; cold = everything
// that went through AdmitAndCompute and succeeded (coalesced requests
// included — they paid the admission wait).
struct ServiceMetrics {
  Histogram& hot_ms = MetricRegistry::Global().GetHistogram("query.hot_ms");
  Histogram& cold_ms =
      MetricRegistry::Global().GetHistogram("query.cold_ms");
  Histogram& append_ms =
      MetricRegistry::Global().GetHistogram("session.append_ms");
  Histogram& cache_load_ms =
      MetricRegistry::Global().GetHistogram("service.cache_load_ms");
  Histogram& cache_save_ms =
      MetricRegistry::Global().GetHistogram("service.cache_save_ms");
  static ServiceMetrics& Get() {
    static ServiceMetrics metrics;
    return metrics;
  }
};

// Observes `histogram` with the timer's elapsed ms when the scope exits,
// covering every return path (success and error alike).
class ScopedTimerObserver {
 public:
  ScopedTimerObserver(Histogram& histogram, const Timer& timer)
      : histogram_(histogram), timer_(timer) {}
  ~ScopedTimerObserver() { histogram_.Observe(timer_.ElapsedMs()); }
  ScopedTimerObserver(const ScopedTimerObserver&) = delete;
  ScopedTimerObserver& operator=(const ScopedTimerObserver&) = delete;

 private:
  Histogram& histogram_;
  const Timer& timer_;
};

// Closes out a traced request: the response's latency becomes the root
// span's duration and the finalized tree (children tile each parent,
// see trace.h) is copied onto the wire response. No-op without a trace.
ExplainResponse FinishTraced(ExplainResponse response, QueryTrace* trace,
                             double total_ms) {
  response.latency_ms = total_ms;
  if (trace) {
    trace->Finalize(total_ms);
    response.trace = trace->spans();
  }
  return response;
}

}  // namespace

namespace {
uint64_t NextServiceInstanceTag() {
  static std::atomic<uint64_t> counter{0};
  return ++counter;
}
}  // namespace

ExplainService::ExplainService(ServiceOptions options)
    : cache_(options.cache_capacity_bytes, options.cache_shards),
      admission_(options.admission),
      tenant_quotas_(cache_,
                     TenantQuotaOptions{options.tenant_cache_budget_bytes}),
      session_log_dir_(std::move(options.session_log_dir)),
      instance_tag_(NextServiceInstanceTag()) {}

bool ExplainService::DropDataset(const std::string& name) {
  if (!registry_.Drop(name)) return false;
  // Open sessions keep their own table copy and session/<id>/ keys; only
  // the dataset-level entries go — in the shared namespace AND in every
  // known tenant's namespace (tenant keys prepend "tenant/<id>/", so the
  // bare dataset prefix would miss them). One multi-prefix pass: the
  // scan cost stays O(entries) however many tenants exist.
  std::vector<std::string> prefixes = tenant_quotas_.KnownTenantPrefixes();
  for (std::string& prefix : prefixes) prefix += DatasetKeyPrefix(name);
  prefixes.push_back(DatasetKeyPrefix(name));
  cache_.InvalidatePrefixes(prefixes);
  return true;
}

ExplainResponse ExplainService::AdmitAndCompute(
    const std::string& cache_key, const std::string& tenant,
    int requested_threads, QueryTrace* trace,
    const std::function<ResultCache::ValuePtr(
        int granted_threads, QueryTrace* trace, int compute_span,
        std::string* error)>& compute) {
  Timer timer;
  // A batched (coalesced) outcome normally lands on the leader's cached
  // value; when the leader failed (or its entry was evicted instantly)
  // we re-enter admission as a potential leader ourselves. Two re-entries
  // are plenty: repeated leader failures mean the query itself fails.
  std::string compute_error;
  for (int attempt = 0; attempt < 3; ++attempt) {
    const int wait_span = trace ? trace->BeginSpan("admission_wait") : -1;
    AdmissionController::Ticket ticket =
        admission_.Admit(cache_key, tenant, requested_threads);
    if (trace) trace->EndSpan(wait_span);
    switch (ticket.outcome()) {
      case AdmissionController::Outcome::kShedOverload: {
        ExplainResponse response = ErrorResponse(
            error_code::kOverloaded,
            "server overloaded: admission queue full; retry later");
        response.retry_after_ms = ticket.retry_after_ms();
        response.admission_outcome = "shed_overload";
        return response;
      }
      case AdmissionController::Outcome::kShedTenant: {
        ExplainResponse response = ErrorResponse(
            error_code::kQuotaExceeded,
            "tenant '" + tenant + "' is at its in-flight quota");
        response.retry_after_ms = ticket.retry_after_ms();
        response.admission_outcome = "shed_tenant";
        return response;
      }
      case AdmissionController::Outcome::kCoalesced: {
        const ResultCache::ValuePtr value = cache_.Lookup(cache_key);
        if (value) {
          ExplainResponse response = ServedResponse(
              cache_key, value, /*cache_hit=*/true, timer.ElapsedMs());
          response.admission_outcome = "coalesced";
          ServiceMetrics::Get().cold_ms.Observe(response.latency_ms);
          return response;
        }
        continue;  // leader failed: retry admission
      }
      case AdmissionController::Outcome::kAdmitted: {
        const int compute_span = trace ? trace->BeginSpan("compute") : -1;
        bool was_hit = false;
        const ResultCache::ValuePtr value = cache_.GetOrCompute(
            cache_key,
            [&]() -> ResultCache::ValuePtr {
              return compute(ticket.granted_threads(), trace, compute_span,
                             &compute_error);
            },
            &was_hit);
        if (trace) trace->EndSpan(compute_span);
        if (!value) {
          ExplainResponse response = ErrorResponse(
              error_code::kInternal, compute_error.empty()
                                         ? "computation failed"
                                         : compute_error);
          response.admission_outcome = "admitted";
          return response;
        }
        ExplainResponse response =
            ServedResponse(cache_key, value, was_hit, timer.ElapsedMs());
        response.admission_outcome = "admitted";
        ServiceMetrics::Get().cold_ms.Observe(response.latency_ms);
        return response;
      }
    }
  }
  return ErrorResponse(error_code::kInternal,
                       compute_error.empty()
                           ? "query kept failing under coalesced retries"
                           : compute_error);
}

ExplainResponse ExplainService::Explain(const ExplainRequest& request) {
  Timer timer;
  std::unique_ptr<QueryTrace> trace_holder;
  if (request.trace) trace_holder = std::make_unique<QueryTrace>();
  QueryTrace* const trace = trace_holder.get();
  if (!request.tenant.empty() && !IsValidTenantId(request.tenant)) {
    return ErrorResponse(
        error_code::kBadRequest,
        "invalid tenant id (use [A-Za-z0-9._:-], at most 64 chars)");
  }
  const DatasetRegistry::TableRef ref = registry_.GetRef(request.dataset);
  if (!ref.table) {
    return ErrorResponse(error_code::kNotFound,
                         "unknown dataset: " + request.dataset);
  }
  TSExplainConfig config = request.config;
  std::string validation_error;
  if (!ValidateAndNormalize(*ref.table, &config, &validation_error)) {
    return ErrorResponse(error_code::kInvalidQuery, validation_error);
  }

  const CanonicalQuery canonical =
      CanonicalizeQuery(request.dataset, config);
  // The registration uid fences drop + re-register races: a computation
  // against the old table can only ever land under the old uid's key,
  // which no post-re-register request asks for (it ages out via LRU).
  // The tenant prefix namespaces the entry so per-tenant cache budgets
  // can scope evictions to exactly this tenant's keys.
  const std::string cache_key =
      TenantKeyPrefix(request.tenant) + canonical.query_key +
      StrFormat("|uid=%llu", static_cast<unsigned long long>(ref.uid)) +
      ReportSuffix(request.include_trendlines, request.include_k_curve);
  if (!request.tenant.empty()) tenant_quotas_.EnsureTenant(request.tenant);

  // Hot path: cached results bypass admission — overload can defer cold
  // work but never a hit.
  const int lookup_span = trace ? trace->BeginSpan("cache_lookup") : -1;
  const ResultCache::ValuePtr hot = cache_.Lookup(cache_key);
  if (trace) trace->EndSpan(lookup_span);
  if (hot) {
    ExplainResponse response = ServedResponse(cache_key, hot,
                                              /*cache_hit=*/true,
                                              timer.ElapsedMs());
    response.admission_outcome = "cache_hit";
    ServiceMetrics::Get().hot_ms.Observe(response.latency_ms);
    return FinishTraced(std::move(response), trace, timer.ElapsedMs());
  }

  ExplainResponse response = AdmitAndCompute(
      cache_key, request.tenant, ResolveThreadCount(config.threads), trace,
      [&](int granted_threads, QueryTrace* compute_trace, int compute_span,
          std::string* compute_error) -> ResultCache::ValuePtr {
        // The admission grant replaces the requested thread count (it is
        // a ceiling, not a demand); results are identical either way.
        TSExplainConfig run_config = config;
        run_config.threads = granted_threads;
        std::string engine_error;
        const double build_start =
            compute_trace ? compute_trace->ElapsedMs() : 0.0;
        EngineHandle handle = registry_.GetOrBuildEngine(
            request.dataset, canonical.engine_key, run_config,
            ref.table.get(), &engine_error);
        if (!handle.ok()) {
          *compute_error = engine_error;
          return nullptr;
        }
        if (compute_trace) {
          compute_trace->AddSpan("engine_build", build_start,
                                 compute_trace->ElapsedMs() - build_start,
                                 compute_span);
        }
        const SegmentationSpec spec =
            SegmentationSpec::FromConfig(run_config);
        auto cached = std::make_shared<CachedResult>();
        {
          // Run mutates the engine's explanation caches; serialize per
          // engine. Distinct engines still run fully in parallel.
          MutexLock lock(*handle.mu);
          const double run_start =
              compute_trace ? compute_trace->ElapsedMs() : 0.0;
          cached->result =
              std::make_shared<TSExplainResult>(handle.engine->Run(spec));
          if (compute_trace) {
            // Graft the engine's own breakdown (module (a)/(b)/(c), see
            // tsexplain.h) as children of the run span; Finalize squares
            // any residue into an "other" child.
            const int run_span = compute_trace->AddSpan(
                "engine_run", run_start,
                compute_trace->ElapsedMs() - run_start, compute_span);
            const TimingBreakdown& t = cached->result->timing;
            double offset = run_start;
            compute_trace->AddSpan("cube_build", offset, t.precompute_ms,
                                   run_span);
            offset += t.precompute_ms;
            compute_trace->AddSpan("ca_fanout", offset, t.cascading_ms,
                                   run_span);
            offset += t.cascading_ms;
            compute_trace->AddSpan("segmentation", offset,
                                   t.segmentation_ms, run_span);
          }
          const double render_start =
              compute_trace ? compute_trace->ElapsedMs() : 0.0;
          cached->json = RenderJsonReport(
              handle.engine->cube(), *cached->result,
              WireReportOptions(request.include_trendlines,
                                request.include_k_curve));
          if (compute_trace) {
            compute_trace->AddSpan(
                "json_render", render_start,
                compute_trace->ElapsedMs() - render_start, compute_span);
          }
        }
        return cached;
      });
  return FinishTraced(std::move(response), trace, timer.ElapsedMs());
}

ExplainService::RecommendResponse ExplainService::Recommend(
    const std::string& dataset, AggregateFunction aggregate,
    const std::string& measure, int m) {
  RecommendResponse response;
  const std::shared_ptr<const Table> table = registry_.Get(dataset);
  if (!table) {
    response.error_code = error_code::kNotFound;
    response.error = "unknown dataset: " + dataset;
    return response;
  }
  if (!measure.empty() && table->schema().MeasureIndex(measure) < 0) {
    response.error_code = error_code::kInvalidQuery;
    response.error = "unknown measure: " + measure;
    return response;
  }
  if (m < 1) {
    response.error_code = error_code::kInvalidQuery;
    response.error = StrFormat("m must be >= 1, got %d", m);
    return response;
  }
  response.ok = true;
  response.recommendations = RecommendExplainBy(*table, aggregate, measure, m);
  return response;
}

uint64_t ExplainService::OpenSession(const std::string& dataset,
                                     const TSExplainConfig& config,
                                     std::string* error) {
  const DatasetRegistry::TableRef ref = registry_.GetRef(dataset);
  const std::shared_ptr<const Table>& table = ref.table;
  if (!table) {
    *error = "unknown dataset: " + dataset;
    return 0;
  }
  TSExplainConfig normalized = config;
  if (!ValidateAndNormalize(*table, &normalized, error)) return 0;

  auto session = std::make_shared<Session>();
  session->dataset = dataset;
  session->config = normalized;
  {
    MutexLock lock(sessions_mu_);
    session->id = next_session_id_++;
  }
  {
    // The session is still private, so its mutex is uncontended; holding
    // it makes the guarded-field writes below provable to the analysis.
    MutexLock session_lock(session->mu);
    // StreamingTSExplain copies the table: the session's view grows
    // independently of the immutable registered dataset.
    session->engine =
        std::make_unique<StreamingTSExplain>(*table, normalized);
    if (!session_log_dir_.empty()) {
      // The fingerprint was computed once at registration; the cached
      // copy keeps OpenSession from re-serializing the table here.
      AttachSessionLog(*session, ref.fingerprint, {});
    }
  }
  {
    // Published only after the log observer is subscribed: no append can
    // reach the session unlogged.
    MutexLock lock(sessions_mu_);
    sessions_.emplace(session->id, session);
  }
  return session->id;
}

void ExplainService::AttachSessionLog(
    Session& session, uint64_t base_fingerprint,
    const std::vector<storage::SessionLogAppend>& replayed) {
  if (session_log_dir_.empty()) return;
  // The pid + instance tag make collisions rare (session ids restart at
  // 1 per incarnation), but neither survives containers — a supervised
  // server is pid 1 every run. SessionLogWriter::Open truncates its
  // target, so NEVER reuse an existing name: an existing file is a
  // crashed incarnation's still-recoverable log, and the probe steps
  // around it instead of wiping it.
  const std::string base =
      StrFormat("%s/session_%d_%llu_%llu", session_log_dir_.c_str(),
                static_cast<int>(::getpid()),
                static_cast<unsigned long long>(instance_tag_),
                static_cast<unsigned long long>(session.id));
  session.log_path = base + ".log";
  for (int k = 1; ; ++k) {
    std::FILE* exists = std::fopen(session.log_path.c_str(), "rb");
    if (!exists) break;
    std::fclose(exists);
    session.log_path = base + StrFormat(".%d.log", k);
  }
  session.log = std::make_unique<storage::SessionLogWriter>();
  storage::StorageStatus status = session.log->Open(
      session.log_path, session.dataset, base_fingerprint, session.config);
  for (const storage::SessionLogAppend& append : replayed) {
    if (!status.ok()) break;
    status = session.log->LogAppend(append.label, append.rows);
  }
  if (!status.ok()) {
    // A session must stay usable when its log cannot be: recovery is a
    // best-effort add-on, the in-memory engine is the source of truth.
    // The half-written file goes too — a truncated log would later
    // "recover" cleanly to the wrong state.
    std::fprintf(stderr, "session %llu: log disabled (%s)\n",
                 static_cast<unsigned long long>(session.id),
                 status.ToString().c_str());
    session.log.reset();
    std::remove(session.log_path.c_str());
    session.log_path.clear();
    return;
  }
  // Subscribed AFTER the header and any replayed appends are on disk, so
  // replayed appends are never double-logged. The raw pointer is safe:
  // log and engine are destroyed together with the session, every
  // AppendBucket happens under the session mutex, and sessions live in
  // the map via shared_ptr (stable address).
  Session* s = &session;
  session.engine->set_append_observer(
      [s](const std::string& label, const std::vector<StreamRow>& rows) {
        // Contract: AppendBucket (hence this observer) only runs under
        // the session mutex; the std::function boundary hides that from
        // the static analysis, so assert it instead.
        s->mu.AssertHeld();
        if (!s->log || s->log_failed) return;
        const storage::StorageStatus append_status =
            s->log->LogAppend(label, rows);
        if (!append_status.ok()) {
          // One missing bucket would make every LATER append a lie:
          // recovery would replay a gapped series with ok/torn=false.
          // Disable the log and delete the file — no recovery beats a
          // silently wrong one.
          s->log_failed = true;
          s->log->Close();
          std::remove(s->log_path.c_str());
          std::fprintf(stderr,
                       "session %llu: log disabled after failed append "
                       "(%s)\n",
                       static_cast<unsigned long long>(s->id),
                       append_status.ToString().c_str());
        }
      });
}

uint64_t ExplainService::RecoverSession(const std::string& log_path,
                                        std::string* error, bool* torn,
                                        int* replayed) {
  // Peek the header for the dataset name, then run the full recovery
  // (fingerprint fencing + replay) against the currently registered
  // table. The double read is fine: recovery is a rare startup path.
  storage::SessionLogContents contents;
  storage::StorageStatus status = storage::ReadSessionLog(log_path, &contents);
  if (!status.ok()) {
    *error = status.ToString();
    return 0;
  }
  const std::shared_ptr<const Table> table = registry_.Get(contents.dataset);
  if (!table) {
    *error = "unknown dataset: " + contents.dataset +
             " (register it before recovering sessions that stream on it)";
    return 0;
  }
  // The logged config was validated when the crashed process opened the
  // session — but the LOG is untrusted input, so re-validate against the
  // live schema before any engine code (whose TSE_CHECKs abort) sees it,
  // and build the engine from the VALIDATED (normalized) copy: a crafted
  // header must not smuggle, say, duplicate explain-by attributes past a
  // validation whose result is thrown away. For a legitimate log the two
  // are identical (OpenSession logged the normalized config).
  TSExplainConfig validated = contents.config;
  {
    std::string config_error;
    if (!ValidateAndNormalize(*table, &validated, &config_error)) {
      *error = "format_error: session log config invalid: " + config_error;
      return 0;
    }
  }
  storage::SessionRecoveryResult recovered =
      storage::RecoverStreamingSession(*table, log_path, &validated);
  if (!recovered.ok()) {
    *error = recovered.status.ToString();
    return 0;
  }
  if (torn) *torn = recovered.contents.torn;
  if (replayed) {
    *replayed = static_cast<int>(recovered.contents.appends.size());
  }
  auto session = std::make_shared<Session>();
  session->dataset = recovered.contents.dataset;
  session->config = validated;  // what the engine was actually built from
  {
    MutexLock lock(sessions_mu_);
    session->id = next_session_id_++;
  }
  {
    // Unpublished session: uncontended lock, same as OpenSession.
    MutexLock session_lock(session->mu);
    session->engine = std::move(recovered.engine);
    // The recovered session gets a FRESH log under its new id (header +
    // replayed appends), so a second crash recovers to exactly this state;
    // the old log is superseded but left for the operator to remove.
    AttachSessionLog(*session, recovered.contents.base_fingerprint,
                     recovered.contents.appends);
  }
  {
    MutexLock lock(sessions_mu_);
    sessions_.emplace(session->id, session);
  }
  return session->id;
}

std::shared_ptr<ExplainService::Session> ExplainService::FindSession(
    uint64_t session_id) const {
  MutexLock lock(sessions_mu_);
  const auto it = sessions_.find(session_id);
  return it == sessions_.end() ? nullptr : it->second;
}

bool ExplainService::Append(uint64_t session_id, const std::string& label,
                            const std::vector<StreamRow>& rows,
                            std::string* error) {
  const std::shared_ptr<Session> session = FindSession(session_id);
  if (!session) {
    *error = StrFormat("unknown session: %llu",
                       static_cast<unsigned long long>(session_id));
    return false;
  }
  MutexLock lock(session->mu);
  const Schema& schema = session->engine->table().schema();
  for (const StreamRow& row : rows) {
    if (row.dims.size() != schema.num_dimensions() ||
        row.measures.size() != schema.num_measures()) {
      *error = StrFormat(
          "row shape mismatch: expected %zu dims + %zu measures, got %zu + "
          "%zu",
          schema.num_dimensions(), schema.num_measures(), row.dims.size(),
          row.measures.size());
      return false;
    }
  }
  Timer append_timer;
  session->engine->AppendBucket(label, rows);
  // New data makes this session's cached explanations stale — and ONLY
  // this session's: the prefix scopes the invalidation, so dataset-level
  // cache entries and other sessions are untouched (tested).
  cache_.InvalidatePrefix(StrFormat(
      "session/%llu/", static_cast<unsigned long long>(session_id)));
  ServiceMetrics::Get().append_ms.Observe(append_timer.ElapsedMs());
  return true;
}

ExplainResponse ExplainService::ExplainSession(uint64_t session_id,
                                               bool include_trendlines,
                                               bool include_k_curve,
                                               const std::string& tenant,
                                               bool trace_requested) {
  Timer timer;
  std::unique_ptr<QueryTrace> trace_holder;
  if (trace_requested) trace_holder = std::make_unique<QueryTrace>();
  QueryTrace* const trace = trace_holder.get();
  if (!tenant.empty() && !IsValidTenantId(tenant)) {
    return ErrorResponse(
        error_code::kBadRequest,
        "invalid tenant id (use [A-Za-z0-9._:-], at most 64 chars)");
  }
  const std::shared_ptr<Session> session = FindSession(session_id);
  if (!session) {
    return ErrorResponse(
        error_code::kNotFound,
        StrFormat("unknown session: %llu",
                  static_cast<unsigned long long>(session_id)));
  }
  MutexLock lock(session->mu);
  if (session->engine->n() < 3) {
    return ErrorResponse(error_code::kInvalidQuery,
                         "session needs at least three time buckets");
  }
  // The key embeds the current length: an explain after an append can
  // never alias a pre-append entry even if an invalidation is lost.
  // Session keys stay OUTSIDE tenant namespaces (a session is already
  // private to its creator and appends must invalidate it wholesale),
  // but the request still counts against the tenant's in-flight cap.
  const std::string cache_key =
      StrFormat("session/%llu/n%d",
                static_cast<unsigned long long>(session_id),
                session->engine->n()) +
      ReportSuffix(include_trendlines, include_k_curve);
  const int lookup_span = trace ? trace->BeginSpan("cache_lookup") : -1;
  const ResultCache::ValuePtr hot = cache_.Lookup(cache_key);
  if (trace) trace->EndSpan(lookup_span);
  if (hot) {
    ExplainResponse response = ServedResponse(cache_key, hot,
                                              /*cache_hit=*/true,
                                              timer.ElapsedMs());
    response.admission_outcome = "cache_hit";
    ServiceMetrics::Get().hot_ms.Observe(response.latency_ms);
    return FinishTraced(std::move(response), trace, timer.ElapsedMs());
  }
  // Admission happens while holding the session mutex: every op on one
  // session is serialized anyway (that is the session contract), and the
  // slot taken here is released before any other session op can need it.
  ExplainResponse response = AdmitAndCompute(
      cache_key, tenant,
      ResolveThreadCount(session->config.threads), trace,
      [&](int granted_threads, QueryTrace* compute_trace, int compute_span,
          std::string* /*compute_error*/) -> ResultCache::ValuePtr {
        auto cached = std::make_shared<CachedResult>();
        const double run_start =
            compute_trace ? compute_trace->ElapsedMs() : 0.0;
        cached->result = std::make_shared<TSExplainResult>(
            session->engine->Explain(granted_threads));
        if (compute_trace) {
          const int run_span = compute_trace->AddSpan(
              "engine_run", run_start,
              compute_trace->ElapsedMs() - run_start, compute_span);
          const TimingBreakdown& t = cached->result->timing;
          double offset = run_start;
          compute_trace->AddSpan("cube_build", offset, t.precompute_ms,
                                 run_span);
          offset += t.precompute_ms;
          compute_trace->AddSpan("ca_fanout", offset, t.cascading_ms,
                                 run_span);
          offset += t.cascading_ms;
          compute_trace->AddSpan("segmentation", offset, t.segmentation_ms,
                                 run_span);
        }
        const double render_start =
            compute_trace ? compute_trace->ElapsedMs() : 0.0;
        cached->json = RenderJsonReport(
            session->engine->cube(), *cached->result,
            WireReportOptions(include_trendlines, include_k_curve));
        if (compute_trace) {
          compute_trace->AddSpan(
              "json_render", render_start,
              compute_trace->ElapsedMs() - render_start, compute_span);
        }
        return cached;
      });
  return FinishTraced(std::move(response), trace, timer.ElapsedMs());
}

bool ExplainService::CloseSession(uint64_t session_id) {
  std::shared_ptr<Session> session;
  {
    MutexLock lock(sessions_mu_);
    const auto it = sessions_.find(session_id);
    if (it == sessions_.end()) return false;
    session = it->second;
    sessions_.erase(it);
  }
  {
    // A deliberately closed session needs no crash recovery: drop its log.
    MutexLock lock(session->mu);
    if (session->log) {
      session->engine->set_append_observer(nullptr);
      session->log->Close();
      session->log.reset();
      std::remove(session->log_path.c_str());
    }
  }
  cache_.InvalidatePrefix(StrFormat(
      "session/%llu/", static_cast<unsigned long long>(session_id)));
  return true;
}

std::string ExplainService::SessionLogPath(uint64_t session_id) const {
  const std::shared_ptr<Session> session = FindSession(session_id);
  if (!session) return std::string();
  MutexLock lock(session->mu);
  // log_failed means the file was deleted: reporting its path would tell
  // the operator the session is recoverable when it is not.
  if (!session->log || session->log_failed) return std::string();
  return session->log_path;
}

int ExplainService::SessionLength(uint64_t session_id) const {
  const std::shared_ptr<Session> session = FindSession(session_id);
  if (!session) return -1;
  MutexLock lock(session->mu);
  return session->engine->n();
}

bool ExplainService::SessionLastAppendRebuilt(uint64_t session_id) const {
  const std::shared_ptr<Session> session = FindSession(session_id);
  if (!session) return false;
  MutexLock lock(session->mu);
  return session->engine->last_append_rebuilt();
}

ServiceStats ExplainService::Stats() const {
  ServiceStats stats;
  stats.datasets = registry_.List().size();
  stats.hot_engines = registry_.NumEngines();
  {
    MutexLock lock(sessions_mu_);
    stats.open_sessions = sessions_.size();
  }
  stats.tenants = tenant_quotas_.NumTenants();
  stats.cache = cache_.stats();
  stats.admission = admission_.stats();
  const std::vector<std::string> tenants = tenant_quotas_.KnownTenants();
  std::vector<std::string> prefixes;
  prefixes.reserve(tenants.size());
  for (const std::string& tenant : tenants) {
    prefixes.push_back(TenantKeyPrefix(tenant));
  }
  const std::vector<size_t> bytes = cache_.PrefixBytesMany(prefixes);
  for (size_t t = 0; t < tenants.size(); ++t) {
    stats.tenant_bytes.emplace_back(tenants[t], bytes[t]);
  }
  return stats;
}

bool ExplainService::SaveCache(const std::string& path, std::string* error,
                               size_t* saved) const {
  Timer timer;
  ScopedTimerObserver observe_save(ServiceMetrics::Get().cache_save_ms,
                                   timer);
  storage::CacheSnapshot snapshot;
  for (const DatasetInfo& info : registry_.List()) {
    const DatasetRegistry::TableRef ref = registry_.GetRef(info.name);
    if (!ref.table) continue;  // dropped between List and GetRef
    storage::CacheSnapshot::DatasetStamp stamp;
    stamp.name = info.name;
    stamp.uid = ref.uid;
    // Cached at registration: SaveCache stamps every dataset without
    // re-serializing any table.
    stamp.fingerprint = ref.fingerprint;
    snapshot.datasets.push_back(std::move(stamp));
  }
  for (auto& [key, value] : cache_.ExportEntries()) {
    // Session entries are process-local (session ids restart at 1 after a
    // restart, so a stale entry could alias a NEW session's key): never
    // persisted.
    if (key.rfind("session/", 0) == 0) continue;
    storage::CacheSnapshot::Entry entry;
    entry.key = key;
    entry.json = value->json;
    snapshot.entries.push_back(std::move(entry));
  }
  const storage::StorageStatus status =
      storage::WriteCacheSnapshot(snapshot, path);
  if (!status.ok()) {
    *error = status.ToString();
    return false;
  }
  if (saved) *saved = snapshot.entries.size();
  return true;
}

bool ExplainService::LoadCache(const std::string& path, std::string* error,
                               size_t* restored, size_t* fenced) {
  Timer timer;
  ScopedTimerObserver observe_load(ServiceMetrics::Get().cache_load_ms,
                                   timer);
  storage::CacheSnapshot snapshot;
  {
    const storage::StorageStatus status =
        storage::ReadCacheSnapshot(path, &snapshot);
    if (!status.ok()) {
      *error = status.ToString();
      return false;
    }
  }
  // The uid fence: a saved uid is accepted only when the SAME dataset
  // name is registered right now with a bit-identical table (content
  // fingerprint match), and is then rewritten to the live registration's
  // uid. Anything else — name gone, data changed, fingerprint forged for
  // an unknown name — leaves its entries fenced out.
  std::map<uint64_t, uint64_t> uid_remap;
  for (const storage::CacheSnapshot::DatasetStamp& stamp : snapshot.datasets) {
    const DatasetRegistry::TableRef ref = registry_.GetRef(stamp.name);
    if (!ref.table) continue;
    if (ref.fingerprint != stamp.fingerprint) continue;
    uid_remap[stamp.uid] = ref.uid;
  }
  size_t kept = 0;
  size_t dropped = 0;
  for (const storage::CacheSnapshot::Entry& entry : snapshot.entries) {
    const std::string rewritten = [&]() -> std::string {
      if (entry.key.rfind("session/", 0) == 0) return {};  // never restored
      // Keys end "...|uid=<n>|rep=tXcY"; rfind tolerates hostile dataset
      // names that embed "|uid=" themselves (the LAST occurrence is the
      // real field).
      const size_t uid_pos = entry.key.rfind("|uid=");
      if (uid_pos == std::string::npos) return {};
      const size_t digits = uid_pos + 5;
      size_t end = digits;
      while (end < entry.key.size() && entry.key[end] >= '0' &&
             entry.key[end] <= '9') {
        ++end;
      }
      if (end == digits) return {};
      uint64_t saved_uid = 0;
      for (size_t i = digits; i < end; ++i) {
        if (saved_uid > (~0ull - 9) / 10) return {};  // overflow: reject
        saved_uid = saved_uid * 10 + static_cast<uint64_t>(
                                         entry.key[i] - '0');
      }
      const auto it = uid_remap.find(saved_uid);
      if (it == uid_remap.end()) return {};
      // Tenant-namespaced entries re-install their tenant (and its cache
      // budget) so warm-started bytes are governed exactly like fresh
      // ones. A malformed tenant id fences the entry.
      if (entry.key.rfind("tenant/", 0) == 0) {
        const size_t slash = entry.key.find('/', 7);
        if (slash == std::string::npos) return {};
        const std::string tenant = entry.key.substr(7, slash - 7);
        if (!IsValidTenantId(tenant)) return {};
        tenant_quotas_.EnsureTenant(tenant);
      }
      return entry.key.substr(0, digits) +
             StrFormat("%llu", static_cast<unsigned long long>(it->second)) +
             entry.key.substr(end);
    }();
    if (rewritten.empty()) {
      ++dropped;
      continue;
    }
    // Warm-started entries carry the pre-rendered wire JSON only (the
    // structured result is rebuilt the first time something needs it by
    // simply recomputing on a miss); entries are re-Put least recently
    // used first, reproducing each shard's LRU order.
    auto value = std::make_shared<CachedResult>();
    value->json = entry.json;
    cache_.Put(rewritten, value);
    ++kept;
  }
  if (restored) *restored = kept;
  if (fenced) *fenced = dropped;
  return true;
}

std::future<ExplainResponse> ServiceExecutor::SubmitExplain(
    ExplainRequest request) {
  auto promise = std::make_shared<std::promise<ExplainResponse>>();
  std::future<ExplainResponse> future = promise->get_future();
  ExplainService* service = &service_;
  pool_.Submit([service, promise, request = std::move(request)] {
    promise->set_value(service->Explain(request));
  });
  return future;
}

std::future<ExplainResponse> ServiceExecutor::SubmitSessionExplain(
    uint64_t session_id) {
  auto promise = std::make_shared<std::promise<ExplainResponse>>();
  std::future<ExplainResponse> future = promise->get_future();
  ExplainService* service = &service_;
  pool_.Submit([service, promise, session_id] {
    promise->set_value(service->ExplainSession(session_id));
  });
  return future;
}

}  // namespace tsexplain
