// The embeddable explanation service (paper section 8's interactive /
// real-time vision): amortizes dataset loading and cube construction
// across queries, deduplicates concurrent identical queries, and serves
// results from a sharded LRU cache.
//
// Layering:
//   DatasetRegistry  — named immutable tables + hot engines (per engine
//                      key), built once and reused.
//   CanonicalizeQuery— stable cache/engine keys (query_key.h).
//   ResultCache      — sharded LRU + single-flight (result_cache.h).
//   ExplainService   — validation, the explain/recommend entry points,
//                      and streaming sessions wrapping StreamingTSExplain.
//   ServiceExecutor  — per-query futures on a shared ThreadPool.
//
// All entry points are thread-safe; responses carry error codes instead
// of aborting, so a malformed query can never take the server down (the
// service validates every schema-dependent field before touching engine
// code, whose TSE_CHECKs abort on violated invariants).
//
// Results are REPRODUCIBLE: a cached or concurrently-served response is
// bit-identical to running TSExplain::Run on the same table serially
// (asserted by tests/test_service.cc), because engines are shared, Run is
// serialized per engine, and the JSON is rendered exactly once.

#ifndef TSEXPLAIN_SERVICE_EXPLAIN_SERVICE_H_
#define TSEXPLAIN_SERVICE_EXPLAIN_SERVICE_H_

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_pool.h"
#include "src/pipeline/recommend.h"
#include "src/pipeline/report_json.h"
#include "src/pipeline/streaming.h"
#include "src/service/admission.h"
#include "src/service/dataset_registry.h"
#include "src/service/quota.h"
#include "src/service/result_cache.h"
#include "src/service/trace.h"
#include "src/storage/session_log.h"

namespace tsexplain {

/// Stable machine-readable error codes (docs/SERVICE.md).
namespace error_code {
inline constexpr char kParseError[] = "parse_error";
inline constexpr char kUnknownOp[] = "unknown_op";
inline constexpr char kBadRequest[] = "bad_request";
inline constexpr char kNotFound[] = "not_found";
inline constexpr char kInvalidQuery[] = "invalid_query";
inline constexpr char kInternal[] = "internal";
/// Load shed: the bounded admission queue is full. Retry after
/// `retry_after_ms`.
inline constexpr char kOverloaded[] = "overloaded";
/// Load shed: the request's tenant is at its in-flight cap.
inline constexpr char kQuotaExceeded[] = "quota_exceeded";
}  // namespace error_code

struct ServiceOptions {
  size_t cache_capacity_bytes = 64ull << 20;  // 64 MiB
  int cache_shards = 8;
  /// Overload control (admission.h): bounded concurrency + queue, load
  /// shedding, duplicate batching, per-tenant in-flight caps, adaptive
  /// thread grants. Defaults admit one running query per pool worker.
  AdmissionOptions admission;
  /// Per-tenant ResultCache byte budget (quota.h); 0 = tenants share the
  /// global LRU unbounded. Cache hits are never quota-checked.
  size_t tenant_cache_budget_bytes = 0;
  /// When set, every streaming session appends to a crash-recovery log
  /// under this directory (src/storage/session_log.h): OpenSession
  /// writes the header, each Append is logged after the engine absorbs
  /// it, CloseSession deletes the log. RecoverSession replays a log from
  /// a crashed process. The file name is incarnation-scoped
  /// (pid + instance tag + session id) — never construct it by hand, ask
  /// SessionLogPath() (the open_session response carries it as "log").
  /// Empty = session persistence off.
  std::string session_log_dir;
};

struct ExplainRequest {
  std::string dataset;
  TSExplainConfig config;
  /// Optional tenant identifier ([A-Za-z0-9._:-], <= 64 chars). Tenants
  /// get their own cache namespace (budgeted when the service is
  /// configured with tenant_cache_budget_bytes) and count against the
  /// per-tenant in-flight cap. Empty = the shared namespace.
  std::string tenant;
  /// Report shape (part of the cache key). The wire JSON is always
  /// compact; trendlines are opt-in to keep hot responses small.
  bool include_trendlines = false;
  bool include_k_curve = true;
  /// Collect per-query trace spans (trace.h) into ExplainResponse::trace.
  /// NOT part of the cache key: tracing changes what is reported, never
  /// what is computed, and a traced hit is still a hit.
  bool trace = false;
};

struct ExplainResponse {
  bool ok = false;
  std::string error_code;  // one of error_code::k* when !ok
  std::string error;       // human-readable detail
  /// For overloaded / quota_exceeded errors: how long the client should
  /// back off before retrying (0 otherwise).
  double retry_after_ms = 0.0;
  std::string query_key;   // canonical key (diagnostics; empty when !ok)
  bool cache_hit = false;  // served without running the pipeline here
  /// Structured result. MAY BE NULL on a hit served from a warm-started
  /// (LoadCache) entry, which persists the wire JSON only — check before
  /// dereferencing, or use `json` (always set on ok), which is what the
  /// server and every wire client consume.
  std::shared_ptr<const TSExplainResult> result;
  std::string json;        // RenderJsonReport output (compact)
  double latency_ms = 0.0;
  /// How admission resolved this request: "cache_hit", "admitted",
  /// "coalesced", "shed_overload" or "shed_tenant" (empty for requests
  /// rejected before the cache, e.g. validation errors). Feeds the
  /// slow-query log.
  std::string admission_outcome;
  /// Finalized span tree (empty unless the request asked for tracing).
  /// Spans partition the root's wall clock; see trace.h.
  std::vector<TraceSpan> trace;
};

struct ServiceStats {
  size_t datasets = 0;
  size_t hot_engines = 0;
  size_t open_sessions = 0;
  size_t tenants = 0;
  ResultCache::Stats cache;
  AdmissionController::Stats admission;
  /// Resident cache bytes per tenant namespace, sorted by tenant id —
  /// the operator's view of who a (possibly warm-started) cache belongs
  /// to. The shared (tenant-less) namespace is cache.bytes_used minus
  /// the sum of these.
  std::vector<std::pair<std::string, size_t>> tenant_bytes;
};

class ExplainService {
 public:
  explicit ExplainService(ServiceOptions options = {});

  /// Dataset management (thin veneer over the registry).
  DatasetRegistry& registry() { return registry_; }

  /// Drops a dataset AND its cached results, so re-registering the same
  /// name with different data can never serve stale entries. Always
  /// prefer this over registry().Drop() when a ResultCache is in play.
  bool DropDataset(const std::string& name);

  /// Synchronous query. Validation errors, unknown datasets, etc. come
  /// back as error responses; only violated internal invariants abort.
  ///
  /// Hot path: a cached result is served immediately, WITHOUT admission
  /// control — overload can only defer work, never hits. Cold path: the
  /// query passes the AdmissionController (which may batch it onto an
  /// identical in-flight query, queue it briefly, or shed it with
  /// `overloaded` / `quota_exceeded` + retry_after_ms), then runs with
  /// the granted thread count. Results are bit-identical however the
  /// query was served (cached, batched, queued, any thread grant).
  ExplainResponse Explain(const ExplainRequest& request);

  /// Explain-by attribute recommendation (no caching: it is cheap and
  /// dataset-append-sensitive).
  struct RecommendResponse {
    bool ok = false;
    std::string error_code;
    std::string error;
    std::vector<ExplainByRecommendation> recommendations;
  };
  RecommendResponse Recommend(const std::string& dataset,
                              AggregateFunction aggregate,
                              const std::string& measure, int m);

  /// Streaming sessions: append-then-re-explain over one growing table
  /// (wraps StreamingTSExplain). Session cache entries live under the key
  /// prefix "session/<id>/" so appends invalidate exactly that session.
  uint64_t OpenSession(const std::string& dataset,
                       const TSExplainConfig& config, std::string* error);
  bool Append(uint64_t session_id, const std::string& label,
              const std::vector<StreamRow>& rows, std::string* error);
  ExplainResponse ExplainSession(uint64_t session_id,
                                 bool include_trendlines = false,
                                 bool include_k_curve = true,
                                 const std::string& tenant = std::string(),
                                 bool trace = false);
  bool CloseSession(uint64_t session_id);
  /// Number of time buckets in the session; -1 when unknown.
  int SessionLength(uint64_t session_id) const;
  /// The session's crash-recovery log path ("" when logging is off or the
  /// session is unknown). The name embeds the pid, so callers must ask
  /// rather than guess.
  std::string SessionLogPath(uint64_t session_id) const;
  /// Whether the session's last append forced a full engine rebuild.
  bool SessionLastAppendRebuilt(uint64_t session_id) const;

  /// Rebuilds a streaming session from a crash-recovery log written by a
  /// previous process (ServiceOptions::session_log_dir): validates the
  /// log, fences a changed base dataset by content fingerprint, replays
  /// every intact append, and — when session logging is on — starts a
  /// fresh log for the recovered session so the crash-safety chain
  /// continues. Returns the NEW session id (0 + error on failure).
  /// `torn` (optional) reports whether a torn tail was truncated away
  /// (the append in flight at the crash is lost, by design).
  uint64_t RecoverSession(const std::string& log_path, std::string* error,
                          bool* torn = nullptr, int* replayed = nullptr);

  ServiceStats Stats() const;

  /// Cache persistence (src/storage/cache_snapshot.h). SaveCache writes
  /// every resident dataset-level entry (session entries are skipped:
  /// session ids do not survive a restart) plus an identity stamp
  /// (registration uid + content fingerprint) per registered dataset.
  /// LoadCache re-inserts entries whose dataset stamp matches a
  /// CURRENTLY registered dataset with an identical content fingerprint,
  /// rewriting the saved registration uid to the live one; everything
  /// else is fenced out (counted in `fenced`), so a changed or
  /// re-registered dataset can never serve stale warm-start entries.
  /// Errors come back as "code: message" strings with the structured
  /// storage code first (docs/STORAGE.md).
  bool SaveCache(const std::string& path, std::string* error,
                 size_t* saved = nullptr) const;
  bool LoadCache(const std::string& path, std::string* error,
                 size_t* restored = nullptr, size_t* fenced = nullptr);

  /// The overload controller (transports use it to bound their dispatch
  /// backlog and to produce retry-after hints for pre-dispatch sheds).
  AdmissionController& admission() { return admission_; }

 private:
  struct Session {
    mutable Mutex mu;  // serializes Append / Explain on this session
    uint64_t id = 0;
    // Immutable after publication in sessions_ (set while the session is
    // still private to its constructor, read-only afterwards).
    std::string dataset;
    TSExplainConfig config;
    std::unique_ptr<StreamingTSExplain> engine TSE_GUARDED_BY(mu)
        TSE_PT_GUARDED_BY(mu);
    /// Crash-recovery log (null when session logging is off). Lives with
    /// the session; the engine's append observer writes through it, so
    /// it must outlive the engine's last AppendBucket (both are guarded
    /// by `mu`).
    std::unique_ptr<storage::SessionLogWriter> log TSE_GUARDED_BY(mu)
        TSE_PT_GUARDED_BY(mu);
    std::string log_path TSE_GUARDED_BY(mu);
    /// Latched by the append observer on the first failed LogAppend (the
    /// file is deleted then: a gapped log must never be recovered from).
    bool log_failed TSE_GUARDED_BY(mu) = false;
  };

  std::shared_ptr<Session> FindSession(uint64_t session_id) const
      TSE_EXCLUDES(sessions_mu_);

  /// Installs `session`'s crash-recovery log (header + any already-
  /// replayed appends) and subscribes the engine's append observer to
  /// it. No-op when session logging is off. The caller holds the session
  /// mutex (construction-time sessions are unpublished, so the lock is
  /// uncontended — it exists to make the guarded-field access provable).
  void AttachSessionLog(Session& session, uint64_t base_fingerprint,
                        const std::vector<storage::SessionLogAppend>& replayed)
      TSE_REQUIRES(session.mu);

  /// Runs the admission + single-flight compute for one (cold) cache
  /// key; shared by Explain and ExplainSession. `trace` may be null;
  /// when set, admission waits and the compute get spans, and the
  /// compute callback receives the trace plus its "compute" span index
  /// so it can graft engine-phase children under it (the callback only
  /// runs on the single-flight leader, which is exactly the request
  /// whose trace can see inside the computation).
  ExplainResponse AdmitAndCompute(
      const std::string& cache_key, const std::string& tenant,
      int requested_threads, QueryTrace* trace,
      const std::function<ResultCache::ValuePtr(
          int granted_threads, QueryTrace* trace, int compute_span,
          std::string* error)>& compute);

  DatasetRegistry registry_;
  ResultCache cache_;
  AdmissionController admission_;
  TenantQuotaRegistry tenant_quotas_;
  std::string session_log_dir_;
  /// Distinguishes this service's session-log names from every other
  /// incarnation's (process-wide counter; the pid handles cross-process):
  /// session ids restart at 1 per instance, and a colliding name would
  /// let a new session's log truncate a crashed one's.
  const uint64_t instance_tag_;

  mutable Mutex sessions_mu_;
  uint64_t next_session_id_ TSE_GUARDED_BY(sessions_mu_) = 1;
  std::map<uint64_t, std::shared_ptr<Session>> sessions_
      TSE_GUARDED_BY(sessions_mu_);
};

/// Per-query futures on a shared ThreadPool: the serving layer submits
/// requests and multiplexes completions without a thread per client.
class ServiceExecutor {
 public:
  explicit ServiceExecutor(ExplainService& service,
                           ThreadPool& pool = ThreadPool::Shared())
      : service_(service), pool_(pool) {}

  std::future<ExplainResponse> SubmitExplain(ExplainRequest request);
  std::future<ExplainResponse> SubmitSessionExplain(uint64_t session_id);

  ThreadPool& pool() { return pool_; }

 private:
  ExplainService& service_;
  ThreadPool& pool_;
};

}  // namespace tsexplain

#endif  // TSEXPLAIN_SERVICE_EXPLAIN_SERVICE_H_
