// Per-tenant quotas for the explanation service.
//
// Requests may carry an optional `tenant` identifier. A tenant gets its
// own cache-key namespace ("tenant/<id>/..." via TenantKeyPrefix), and —
// when the service is configured with a per-tenant cache budget — a
// ResultCache prefix budget installed lazily on the tenant's first
// request. The budget bounds the bytes that tenant's entries may occupy,
// so one chatty tenant (or one huge dataset sweep) can no longer evict
// every other tenant's hot results. Per-tenant IN-FLIGHT caps live in
// the AdmissionController (admission.h); this module owns identity and
// cache-side quota plumbing.
//
// Tenant ids are restricted to a conservative charset (IsValidTenantId)
// so the id can be embedded verbatim in cache keys without escaping and
// can never collide with the "session/<id>/" or dataset key framing.

#ifndef TSEXPLAIN_SERVICE_QUOTA_H_
#define TSEXPLAIN_SERVICE_QUOTA_H_

#include <set>
#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/service/result_cache.h"

namespace tsexplain {

/// Accepts [A-Za-z0-9._:-], 1..64 chars. Anything else is rejected at
/// the service boundary with bad_request (never silently normalized:
/// two spellings must not alias one quota).
bool IsValidTenantId(const std::string& tenant);

/// "" -> "" (the shared, unbudgeted namespace); "acme" -> "tenant/acme/".
/// Prepended to every cache key the tenant's requests produce, which is
/// exactly the prefix its ResultCache budget scopes.
std::string TenantKeyPrefix(const std::string& tenant);

struct TenantQuotaOptions {
  /// Byte budget installed per tenant prefix; 0 = tenants share the
  /// global LRU with no per-tenant bound.
  size_t cache_budget_bytes = 0;
};

/// Tracks the tenants a service has seen and installs their cache
/// budgets idempotently. Thread-safe.
class TenantQuotaRegistry {
 public:
  TenantQuotaRegistry(ResultCache& cache, TenantQuotaOptions options)
      : cache_(cache), options_(options) {}

  /// Registers `tenant` (must be valid, non-empty) on first sight and
  /// installs its per-prefix cache budget when one is configured.
  void EnsureTenant(const std::string& tenant) TSE_EXCLUDES(mu_);

  /// Key prefixes of every known tenant — dataset drops fan out their
  /// cache invalidation across these so tenant-namespaced entries for
  /// the dropped dataset go too.
  std::vector<std::string> KnownTenantPrefixes() const TSE_EXCLUDES(mu_);

  /// Tenant ids in sorted order (the stats op reports per-tenant cache
  /// namespace byte counts so operators can see who a warm-started cache
  /// belongs to).
  std::vector<std::string> KnownTenants() const TSE_EXCLUDES(mu_);

  size_t NumTenants() const TSE_EXCLUDES(mu_);

 private:
  ResultCache& cache_;
  TenantQuotaOptions options_;
  mutable Mutex mu_;
  std::set<std::string> tenants_ TSE_GUARDED_BY(mu_);
};

}  // namespace tsexplain

#endif  // TSEXPLAIN_SERVICE_QUOTA_H_
