// Named, immutable, shared datasets plus their hot engines.
//
// The registry is the amortization point of the service: a CSV is parsed
// ONCE into an immutable Table shared by every query, and each distinct
// engine configuration (see query_key.h's engine_key) gets ONE hot
// TSExplain instance whose cube / registry / explainer caches persist
// across queries. Engines keep their backing table alive via shared_ptr,
// so dropping a dataset is safe while queries are in flight: they finish
// against the old table, later lookups see "not found".
//
// Thread safety: all methods are safe to call concurrently. TSExplain::Run
// itself mutates internal caches, so each engine carries a mutex that the
// caller must hold around Run (EngineHandle::mu); distinct engines run
// fully in parallel.

#ifndef TSEXPLAIN_SERVICE_DATASET_REGISTRY_H_
#define TSEXPLAIN_SERVICE_DATASET_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/pipeline/tsexplain.h"
#include "src/table/csv_reader.h"

namespace tsexplain {

struct DatasetInfo {
  std::string name;
  std::string source;  // file path, or "<inline>" / "<table>"
  size_t rows = 0;
  size_t time_buckets = 0;
  std::vector<std::string> dimensions;
  std::vector<std::string> measures;
  size_t hot_engines = 0;
  /// Content fingerprint (storage::TableFingerprint), computed exactly
  /// once at registration (snapshot loads reuse the file header's value)
  /// and cached — consumers (session logs, cache fencing) read it from
  /// here instead of re-serializing the table.
  uint64_t fingerprint = 0;
};

/// A leased engine: hold `mu` while calling engine->Run(...); `table`
/// pins the dataset for the lease's lifetime.
struct EngineHandle {
  std::shared_ptr<const Table> table;
  std::shared_ptr<TSExplain> engine;
  std::shared_ptr<Mutex> mu;

  bool ok() const { return engine != nullptr; }
};

class DatasetRegistry {
 public:
  /// Parses `path` and registers the result under `name`. Fails (false +
  /// error) on parse problems or a duplicate name. `info` (optional)
  /// receives the registered dataset's description — callers use it
  /// instead of a racy Get() re-lookup (the dataset may be dropped by
  /// another thread immediately after registration).
  bool RegisterCsvFile(const std::string& name, const std::string& path,
                       const CsvOptions& options, std::string* error,
                       DatasetInfo* info = nullptr);

  /// Same, for CSV text already in memory (server `register` op with
  /// inline data; tests).
  bool RegisterCsvText(const std::string& name, const std::string& text,
                       const CsvOptions& options, std::string* error,
                       DatasetInfo* info = nullptr);

  /// Opens a binary table snapshot (src/storage/table_snapshot.h) via the
  /// zero-copy mmap path (owned-parse fallback for v1 files / platforms
  /// without mmap) and registers it under `name` — the warm-start path: no
  /// CSV re-parse, no column heap copies, and the fingerprint comes from
  /// the file header instead of a re-hash. Fails with the snapshot's
  /// structured error string on a corrupted or truncated file. Dropping
  /// the dataset releases the mapping once the last query finishes.
  bool RegisterSnapshotFile(const std::string& name, const std::string& path,
                            std::string* error, DatasetInfo* info = nullptr);

  /// Registers an already-built table (benches, embedding applications).
  bool RegisterTable(const std::string& name,
                     std::shared_ptr<const Table> table,
                     const std::string& source, std::string* error,
                     DatasetInfo* info = nullptr);

  /// nullptr when unknown.
  std::shared_ptr<const Table> Get(const std::string& name) const;

  /// Get plus the registration's unique id (monotonic across the
  /// process). A name re-registered after a Drop gets a NEW uid, so
  /// callers embedding the uid in cache keys can never alias results
  /// from a previous incarnation of the name — even when an in-flight
  /// computation against the old table lands after the re-register.
  struct TableRef {
    std::shared_ptr<const Table> table;  // nullptr when unknown
    uint64_t uid = 0;
    /// Cached content fingerprint (see DatasetInfo::fingerprint).
    uint64_t fingerprint = 0;
  };
  TableRef GetRef(const std::string& name) const;

  /// Unregisters `name` and drops its hot engines; returns false when
  /// unknown. In-flight queries holding handles are unaffected.
  bool Drop(const std::string& name);

  /// Sorted by name.
  std::vector<DatasetInfo> List() const;

  /// Returns the hot engine for (dataset, engine_key), building it on
  /// first use. `config` must describe engine_key (the caller canonicalizes
  /// first). Building happens under the dataset's engine-map lock —
  /// concurrent requests for the SAME new engine wait rather than building
  /// twice (single-flight by mutual exclusion). The cost: a cold build
  /// also makes OTHER engine lookups on that one dataset wait (cache
  /// hits never come here, and other datasets are unaffected). Fails
  /// when the dataset is unknown, or when `expected_table` (the table
  /// the caller validated `config` against, from GetRef) is no longer
  /// the registered one — a drop + re-register race would otherwise
  /// build an engine whose schema the config was never checked against
  /// (TSE_CHECK abort).
  EngineHandle GetOrBuildEngine(const std::string& name,
                                const std::string& engine_key,
                                const TSExplainConfig& config,
                                const Table* expected_table,
                                std::string* error);

  /// Total hot engines across datasets (stats).
  size_t NumEngines() const;

 private:
  bool RegisterTableWithFingerprint(const std::string& name,
                                    std::shared_ptr<const Table> table,
                                    const std::string& source,
                                    uint64_t fingerprint, std::string* error,
                                    DatasetInfo* info);
  struct EngineEntry {
    std::shared_ptr<TSExplain> engine;
    std::shared_ptr<Mutex> run_mu;
  };
  struct Dataset {
    std::shared_ptr<const Table> table;
    uint64_t uid = 0;
    uint64_t fingerprint = 0;  // computed once at registration
    std::string source;
    // Engine build + lookup serialization (per dataset, not global).
    std::shared_ptr<Mutex> engines_mu = std::make_shared<Mutex>();
    std::map<std::string, EngineEntry> engines
        TSE_GUARDED_BY(*engines_mu);
  };

  mutable Mutex mu_;  // guards datasets_ map shape
  std::map<std::string, std::shared_ptr<Dataset>> datasets_
      TSE_GUARDED_BY(mu_);
};

}  // namespace tsexplain

#endif  // TSEXPLAIN_SERVICE_DATASET_REGISTRY_H_
