#include "src/service/query_key.h"

#include <algorithm>

#include "src/common/strings.h"
#include "src/seg/segment_distance.h"

namespace tsexplain {
namespace {

const char* AggregateName(AggregateFunction aggregate) {
  switch (aggregate) {
    case AggregateFunction::kSum:
      return "sum";
    case AggregateFunction::kCount:
      return "count";
    case AggregateFunction::kAvg:
      return "avg";
  }
  return "?";
}

// Sorted, deduplicated, comma-joined list. Entries are escaped so names
// containing the field separators cannot collide with the key framing
// ("a,b" as one attribute vs "a","b" as two).
std::string CanonicalList(std::vector<std::string> items) {
  std::sort(items.begin(), items.end());
  items.erase(std::unique(items.begin(), items.end()), items.end());
  std::vector<std::string> escaped;
  escaped.reserve(items.size());
  for (const std::string& item : items) {
    std::string e;
    e.reserve(item.size());
    for (char c : item) {
      if (c == '\\' || c == ',' || c == '|' || c == '=') e.push_back('\\');
      e.push_back(c);
    }
    escaped.push_back(std::move(e));
  }
  return Join(escaped, ",");
}

std::string EscapeName(const std::string& name) {
  std::vector<std::string> one = {name};
  return CanonicalList(std::move(one));
}

}  // namespace

std::string DatasetKeyPrefix(const std::string& dataset) {
  return "v1|ds=" + EscapeName(dataset) + "|";
}

CanonicalQuery CanonicalizeQuery(const std::string& dataset,
                                 const TSExplainConfig& config) {
  CanonicalQuery out;

  std::string engine = DatasetKeyPrefix(dataset);
  engine += StrFormat("agg=%s", AggregateName(config.aggregate));
  engine += "|measure=" + EscapeName(config.measure);
  engine += "|by=" + CanonicalList(config.explain_by_names);
  engine += StrFormat("|order=%d|m=%d", config.max_order, config.m);
  // DiffMetricName from diff_metrics.h ("absolute-change", ...).
  engine += StrFormat("|diff=%s", DiffMetricName(config.diff_metric));
  // smooth_window <= 1 is "off" however it was spelled.
  engine += StrFormat("|smooth=%d", std::max(1, config.smooth_window));
  engine += StrFormat("|dedupe=%d", config.dedupe_redundant ? 1 : 0);
  if (config.use_filter) {
    engine += StrFormat("|filter=%.17g", config.filter_ratio);
  }
  if (config.use_guess_verify) {
    engine += StrFormat("|o1=%d", config.initial_guess);
  }
  if (!config.exclude.empty()) {
    engine += "|excl=" + CanonicalList(config.exclude);
  }
  out.engine_key = std::move(engine);

  std::string query = out.engine_key;
  if (config.fixed_k > 0) {
    query += StrFormat("|k=%d", config.fixed_k);
  } else {
    query += StrFormat("|k=auto%d", config.max_k);
  }
  query += StrFormat("|var=%s", VarianceMetricName(config.variance_metric));
  if (config.use_sketch) {
    // <= 0 params mean "derive the paper defaults"; fold every
    // non-positive spelling onto 0 so they hash alike.
    query += StrFormat("|o2=%d,%d",
                       std::max(0, config.sketch_params.max_segment_len),
                       std::max(0, config.sketch_params.target_size));
  }
  out.query_key = std::move(query);
  return out;
}

}  // namespace tsexplain
