#include "src/service/request_log.h"

#include <cerrno>
#include <cstring>

namespace tsexplain {

std::unique_ptr<LineLog> LineLog::Open(const std::string& path,
                                       std::string* error) {
  if (path == "stderr") {
    return std::make_unique<LineLog>(stderr, /*owned=*/false);
  }
  std::FILE* stream = std::fopen(path.c_str(), "ab");
  if (!stream) {
    *error = path + ": " + std::strerror(errno);
    return nullptr;
  }
  return std::make_unique<LineLog>(stream, /*owned=*/true);
}

LineLog::~LineLog() {
  MutexLock lock(mu_);
  if (owned_ && stream_) std::fclose(stream_);
  stream_ = nullptr;
}

void LineLog::WriteLine(const std::string& line) {
  MutexLock lock(mu_);
  if (!stream_) return;
  std::fputs(line.c_str(), stream_);
  std::fputc('\n', stream_);
  std::fflush(stream_);
}

}  // namespace tsexplain
