// Per-query trace spans: a flat tree of (name, start offset, duration,
// parent) records assembled while a request flows through the service
// and returned inline when the request sets "trace": true.
//
// This generalizes TimingBreakdown — the paper's module (a)/(b)/(c)
// split (Figure 10/15) reified as one fixed struct — into an extensible
// span tree that also covers what happens *around* the engine: cache
// lookup, admission wait, JSON render. The breakdown's core invariant
// is preserved: after Finalize(), every parent's direct children
// partition its wall clock exactly — gaps become an explicit "other"
// span and overshoot (cross-clock skew) scales children down, mirroring
// TimingBreakdown::Partition's clamp-and-scale policy.
//
// Tracing is per-request and allocation-light: a QueryTrace is only
// constructed when the caller asked for one, call sites take a nullable
// pointer, and a null trace costs a single branch.

#ifndef TSEXPLAIN_SERVICE_TRACE_H_
#define TSEXPLAIN_SERVICE_TRACE_H_

#include <string>
#include <vector>

#include "src/common/timer.h"

namespace tsexplain {

struct TraceSpan {
  std::string name;
  double start_ms = 0.0;     // offset from the root span's start
  double duration_ms = 0.0;
  int parent = -1;           // index into the span vector; -1 = root
};

/// Collects spans for one request. Not thread-safe: a trace belongs to
/// the single request thread that created it (the engine's internal
/// parallelism is summarized through TimingBreakdown, not traced
/// per-worker).
class QueryTrace {
 public:
  /// Starts the clock and opens the root span ("query", index 0).
  QueryTrace();

  /// Opens a span starting now; returns its index. Close it with
  /// EndSpan. `parent` defaults to the root.
  int BeginSpan(const std::string& name, int parent = 0);
  void EndSpan(int index);

  /// Records a fully-formed span (used to graft TimingBreakdown's
  /// engine-phase durations in as children of a compute span).
  int AddSpan(const std::string& name, double start_ms, double duration_ms,
              int parent);

  /// Milliseconds since the trace started — the same clock every span
  /// offset is measured on.
  double ElapsedMs() const { return timer_.ElapsedMs(); }

  /// Sets the root duration to `total_ms` and enforces the partition
  /// invariant top-down: for every parent, child durations are clamped
  /// to >= 0, scaled down if they exceed the parent, and any remaining
  /// gap > 1e-6 ms becomes a trailing "other" child. After this call,
  /// sum(direct children) == parent duration for every parent that has
  /// children. Call exactly once, at response-assembly time.
  void Finalize(double total_ms);

  const std::vector<TraceSpan>& spans() const { return spans_; }

 private:
  Timer timer_;
  std::vector<TraceSpan> spans_;
  bool finalized_ = false;
};

}  // namespace tsexplain

#endif  // TSEXPLAIN_SERVICE_TRACE_H_
