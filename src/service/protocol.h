// NDJSON protocol: one JSON request object per line in, one JSON response
// object per line out (docs/SERVICE.md documents every op and schema).
//
// The handler is a pure request->response function over an ExplainService
// and is therefore safe to call from many threads at once; the transport
// (tools/tsexplain_serve.cc) decides which ops run inline (mutations, to
// preserve submission order) and which fan out to the executor pool
// (reads). Responses echo the request's "id" so clients can match
// out-of-order completions.

#ifndef TSEXPLAIN_SERVICE_PROTOCOL_H_
#define TSEXPLAIN_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "src/common/json.h"
#include "src/service/explain_service.h"
#include "src/service/request_log.h"

namespace tsexplain {

class ProtocolHandler {
 public:
  explicit ProtocolHandler(ExplainService& service) : service_(service) {}

  /// Request logging (docs/OBSERVABILITY.md). Both sinks are optional
  /// and borrowed (the transport owns them; they must outlive the
  /// handler). The access log gets one compact JSON line per handled
  /// request; the slow-query log gets a structured NDJSON record for
  /// every explain / explain_session whose service latency reached
  /// `slow_query_ms` (<= 0 disables the slow-query log).
  struct LogOptions {
    LineLog* access_log = nullptr;
    LineLog* slow_query_log = nullptr;
    double slow_query_ms = 0.0;
  };
  void set_log_options(const LogOptions& options) { log_ = options; }

  /// Handles one parsed request object; returns the response line
  /// (compact JSON, no trailing newline). Unknown ops and missing fields
  /// come back as ok:false responses, never as aborts.
  std::string Handle(const JsonValue& request);

  /// Response for a line that failed to parse as JSON.
  std::string MakeParseError(const std::string& message) const;

  /// Structured `overloaded` response for a request the TRANSPORT must
  /// shed before dispatch (its backlog slot acquisition failed): echoes
  /// the id and carries the service's retry-after hint, exactly like a
  /// service-level shed.
  std::string MakeOverloaded(const JsonValue& request) const;

  /// Ops the transport must run inline as ordering barriers (after
  /// draining previously dispatched reads) instead of fanning out to the
  /// pool: every state mutation (register, sessions, shutdown) plus
  /// "stats", whose counters are only meaningful once earlier requests
  /// have settled. Unknown ops return true — an unrecognized request is
  /// answered inline, cheaply.
  static bool IsBarrierOp(const std::string& op);

  /// Extracts "op" from a request object ("" when absent).
  static std::string OpOf(const JsonValue& request);

  /// Ops expensive enough to fall under admission control; the transport
  /// bounds its dispatch backlog for exactly these (cheap reads and
  /// barrier ops are never shed).
  static bool IsExpensiveOp(const std::string& op);

 private:
  std::string HandleInternal(const JsonValue& request);

  /// Writes a slow-query record when the slow-query log is armed and
  /// `response.latency_ms` reached the threshold. `dataset` is empty for
  /// session queries; `session` is 0 for dataset queries.
  void MaybeLogSlowQuery(const std::string& op, const std::string& dataset,
                         uint64_t session, const std::string& tenant,
                         const ExplainResponse& response);

  ExplainService& service_;
  LogOptions log_;
};

/// Parses the shared query fields of `explain` / `open_session` requests
/// into a TSExplainConfig. Returns false + error on a malformed field
/// (bad aggregate/metric names, wrong types). Exposed for tests.
bool ParseQueryConfig(const JsonValue& request, TSExplainConfig* config,
                      std::string* error);

}  // namespace tsexplain

#endif  // TSEXPLAIN_SERVICE_PROTOCOL_H_
