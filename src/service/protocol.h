// NDJSON protocol: one JSON request object per line in, one JSON response
// object per line out (docs/SERVICE.md documents every op and schema).
//
// The handler is a pure request->response function over an ExplainService
// and is therefore safe to call from many threads at once; the transport
// (tools/tsexplain_serve.cc) decides which ops run inline (mutations, to
// preserve submission order) and which fan out to the executor pool
// (reads). Responses echo the request's "id" so clients can match
// out-of-order completions.

#ifndef TSEXPLAIN_SERVICE_PROTOCOL_H_
#define TSEXPLAIN_SERVICE_PROTOCOL_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/common/json.h"
#include "src/service/explain_service.h"
#include "src/service/request_log.h"

namespace tsexplain {

class MetricsHistory;
class QueryWatchdog;

class ProtocolHandler {
 public:
  explicit ProtocolHandler(ExplainService& service) : service_(service) {}

  /// Request logging (docs/OBSERVABILITY.md). Both sinks are optional
  /// and borrowed (the transport owns them; they must outlive the
  /// handler). The access log gets one compact JSON line per handled
  /// request; the slow-query log gets a structured NDJSON record for
  /// every explain / explain_session whose service latency reached
  /// `slow_query_ms` (<= 0 disables the slow-query log).
  struct LogOptions {
    LineLog* access_log = nullptr;
    LineLog* slow_query_log = nullptr;
    double slow_query_ms = 0.0;
  };
  void set_log_options(const LogOptions& options) { log_ = options; }

  /// Self-observation wiring (docs/OBSERVABILITY.md, "Self-observation").
  /// All fields are optional and borrowed from the transport: `history`
  /// powers the `metrics_history` op, `watchdog` brackets every request
  /// with a Begin/End stamp and feeds `healthz`/`state`; `start_wall_ms`
  /// (WallMs at process start) yields uptime; `pool_size` is reported in
  /// `state`'s build block. Set once at startup, before serving.
  struct Introspection {
    MetricsHistory* history = nullptr;
    QueryWatchdog* watchdog = nullptr;
    double start_wall_ms = 0.0;
    int pool_size = 0;
  };
  void set_introspection(const Introspection& introspection) {
    introspection_ = introspection;
  }

  /// Handles one parsed request object; returns the response line
  /// (compact JSON, no trailing newline). Unknown ops and missing fields
  /// come back as ok:false responses, never as aborts.
  std::string Handle(const JsonValue& request);

  /// Response for a line that failed to parse as JSON.
  std::string MakeParseError(const std::string& message) const;

  /// Structured `overloaded` response for a request the TRANSPORT must
  /// shed before dispatch (its backlog slot acquisition failed): echoes
  /// the id and carries the service's retry-after hint, exactly like a
  /// service-level shed.
  std::string MakeOverloaded(const JsonValue& request) const;

  /// Ops the transport must run inline as ordering barriers (after
  /// draining previously dispatched reads) instead of fanning out to the
  /// pool: every state mutation (register, sessions, shutdown) plus
  /// "stats", whose counters are only meaningful once earlier requests
  /// have settled. Unknown ops return true — an unrecognized request is
  /// answered inline, cheaply. "healthz" is the one cheap read that is
  /// NOT a barrier: liveness must answer immediately, so the transport
  /// handles it inline without draining (and this handler never touches
  /// an engine or cache mutex for it).
  static bool IsBarrierOp(const std::string& op);

  /// Extracts "op" from a request object ("" when absent).
  static std::string OpOf(const JsonValue& request);

  /// Ops expensive enough to fall under admission control; the transport
  /// bounds its dispatch backlog for exactly these (cheap reads and
  /// barrier ops are never shed).
  static bool IsExpensiveOp(const std::string& op);

 private:
  std::string HandleInternal(const JsonValue& request, uint64_t request_id);

  /// Writes a slow-query record when the slow-query log is armed and
  /// `response.latency_ms` reached the threshold. `dataset` is empty for
  /// session queries; `session` is 0 for dataset queries. `request_id`
  /// joins the record with the access log and the response's trace.
  void MaybeLogSlowQuery(const std::string& op, uint64_t request_id,
                         const std::string& dataset, uint64_t session,
                         const std::string& tenant,
                         const ExplainResponse& response);

  ExplainService& service_;
  LogOptions log_;
  Introspection introspection_;
  /// Monotone per-handler request stamp: echoed in every ok envelope as
  /// "request_id" and in both log records, so traces, the slow-query
  /// log, and the access log join on it.
  std::atomic<uint64_t> next_request_id_{0};
};

/// Parses the shared query fields of `explain` / `open_session` requests
/// into a TSExplainConfig. Returns false + error on a malformed field
/// (bad aggregate/metric names, wrong types). Exposed for tests.
bool ParseQueryConfig(const JsonValue& request, TSExplainConfig* config,
                      std::string* error);

}  // namespace tsexplain

#endif  // TSEXPLAIN_SERVICE_PROTOCOL_H_
