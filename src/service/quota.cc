#include "src/service/quota.h"

namespace tsexplain {

bool IsValidTenantId(const std::string& tenant) {
  if (tenant.empty() || tenant.size() > 64) return false;
  for (char c : tenant) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == ':' || c == '-';
    if (!ok) return false;
  }
  return true;
}

std::string TenantKeyPrefix(const std::string& tenant) {
  if (tenant.empty()) return std::string();
  return "tenant/" + tenant + "/";
}

void TenantQuotaRegistry::EnsureTenant(const std::string& tenant) {
  MutexLock lock(mu_);
  if (!tenants_.insert(tenant).second) return;  // already installed
  if (options_.cache_budget_bytes > 0) {
    cache_.SetPrefixBudget(TenantKeyPrefix(tenant),
                           options_.cache_budget_bytes);
  }
}

std::vector<std::string> TenantQuotaRegistry::KnownTenantPrefixes() const {
  MutexLock lock(mu_);
  std::vector<std::string> prefixes;
  prefixes.reserve(tenants_.size());
  for (const std::string& tenant : tenants_) {
    prefixes.push_back(TenantKeyPrefix(tenant));
  }
  return prefixes;
}

std::vector<std::string> TenantQuotaRegistry::KnownTenants() const {
  MutexLock lock(mu_);
  return std::vector<std::string>(tenants_.begin(), tenants_.end());
}

size_t TenantQuotaRegistry::NumTenants() const {
  MutexLock lock(mu_);
  return tenants_.size();
}

}  // namespace tsexplain
