// Sharded LRU result cache with single-flight computation deduplication.
//
// Keys are canonical query keys (see query_key.h); values are immutable
// computed results shared out by shared_ptr, so eviction never invalidates
// a response a client is still reading. Each shard has its own mutex, LRU
// list, and byte accounting; a key's shard is a hash of the key, so
// unrelated queries do not contend.
//
// Single-flight: when N threads ask for the same missing key
// concurrently, exactly one (the leader) runs the compute function; the
// rest block on a shared_future and receive the leader's value. The
// compute runs OUTSIDE the shard lock, so long computations never block
// unrelated cache traffic. A compute returning nullptr signals
// "failed, do not cache": waiters get the nullptr too, and the next
// request starts a fresh flight.

#ifndef TSEXPLAIN_SERVICE_RESULT_CACHE_H_
#define TSEXPLAIN_SERVICE_RESULT_CACHE_H_

#include <functional>
#include <future>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/mutex.h"
#include "src/pipeline/tsexplain.h"

namespace tsexplain {

/// One cached explanation outcome: the structured result plus its
/// pre-rendered wire JSON (byte-identical for every consumer).
struct CachedResult {
  std::shared_ptr<const TSExplainResult> result;
  std::string json;

  /// Approximate heap footprint used for capacity accounting. The JSON
  /// string dominates; the structured result is charged per segment /
  /// explanation / curve entry.
  size_t CostBytes() const;
};

class ResultCache {
 public:
  using ValuePtr = std::shared_ptr<const CachedResult>;
  /// Must not throw; returns nullptr on failure (not cached).
  using ComputeFn = std::function<ValuePtr()>;

  struct Stats {
    size_t hits = 0;         // served from a completed entry
    size_t misses = 0;       // led a computation
    size_t coalesced = 0;    // waited on another thread's computation
    size_t evictions = 0;    // entries removed to respect capacity
    size_t budget_evictions = 0;  // subset of evictions: prefix budgets
    size_t invalidations = 0;
    size_t entries = 0;      // current resident entries
    size_t bytes_used = 0;   // current resident cost
    size_t capacity_bytes = 0;
  };

  /// `capacity_bytes` bounds the sum of entry costs; `num_shards` >= 1
  /// (rounded up to a power of two).
  explicit ResultCache(size_t capacity_bytes, int num_shards = 8);

  /// Un-counts resident entries from the global cache.entries /
  /// cache.bytes_used gauges so short-lived caches (tests, restarts) do
  /// not leave the process-wide registry drifting.
  ~ResultCache();

  /// Returns the cached value for `key`, computing it single-flight on a
  /// miss. `was_hit` (optional) reports whether this call avoided running
  /// `compute` itself (fresh hit or coalesced onto a concurrent flight).
  ValuePtr GetOrCompute(const std::string& key, const ComputeFn& compute,
                        bool* was_hit = nullptr);

  /// Hit-only probe: the resident value (LRU-touched, counted as a hit)
  /// or nullptr, never starting a flight. The service's fast path uses
  /// this so hot requests bypass admission control entirely.
  ValuePtr Lookup(const std::string& key);

  /// Direct insert/overwrite with the same accounting and eviction as a
  /// completed flight: overwriting never double-charges `bytes_used`,
  /// and an oversized value drops any stale resident entry rather than
  /// leaving it to be served. Used for warm-starts and tests.
  void Put(const std::string& key, const ValuePtr& value);

  /// Installs (or resizes) a byte budget for every key starting with
  /// `prefix` — the per-tenant / per-dataset quota hook: entries under
  /// the prefix are evicted (LRU within the prefix) once their summed
  /// cost exceeds the budget, so one namespace can no longer evict the
  /// world. Like the global capacity, the budget is divided across
  /// shards, so budgets should be generous multiples of a typical entry
  /// cost. The first matching registered prefix wins; resident entries
  /// are re-attributed (and possibly evicted) immediately.
  void SetPrefixBudget(const std::string& prefix, size_t budget_bytes);

  /// Resident bytes currently under `prefix`. For a registered budget
  /// prefix this is O(shards) accounting reads; for any other prefix it
  /// falls back to one full scan (the operator-facing stats op asks for
  /// tenant namespaces whether or not budgets are configured — rare
  /// enough that the scan is acceptable, like InvalidatePrefix).
  size_t PrefixBytes(const std::string& prefix) const;

  /// Resident bytes for SEVERAL disjoint prefixes in one pass (an entry
  /// is charged to the first prefix that matches). The stats op asks for
  /// every tenant namespace at once; one O(entries) scan replaces
  /// O(tenants) scans.
  std::vector<size_t> PrefixBytesMany(
      const std::vector<std::string>& prefixes) const;

  /// Copies every resident entry, least recently used FIRST (per shard),
  /// so re-Putting a snapshot in order reproduces each shard's LRU
  /// ordering (a key always rehashes to the same shard). The cache
  /// persistence layer's export hook; O(entries).
  std::vector<std::pair<std::string, ValuePtr>> ExportEntries() const;

  /// Drops one key (no-op when absent). In-flight computations are not
  /// interrupted, but their value will land AFTER the invalidation and
  /// may be re-evicted by a later invalidation only; callers that need
  /// strict fencing should invalidate after the flight completes (the
  /// service's session mutex provides exactly that ordering).
  void Invalidate(const std::string& key);

  /// Drops every resident entry whose key starts with `prefix`; returns
  /// the number removed. Used by streaming sessions ("session/<id>/...")
  /// and dataset eviction ("...|ds=<name>|...") — rare operations, so the
  /// full scan is acceptable.
  size_t InvalidatePrefix(const std::string& prefix);

  /// Same, for several prefixes in ONE full scan (dataset drops must
  /// clear the shared namespace plus every tenant namespace; one pass
  /// visits each entry once instead of once per prefix).
  size_t InvalidatePrefixes(const std::vector<std::string>& prefixes);

  Stats stats() const;

 private:
  struct Entry {
    ValuePtr value;
    size_t cost = 0;
    int budget = -1;  // index into the budget list; -1 = unbudgeted
    std::list<std::string>::iterator lru_pos;
  };
  struct Flight {
    std::promise<ValuePtr> promise;
    std::shared_future<ValuePtr> future;
  };
  struct Shard {
    mutable Mutex mu;
    std::unordered_map<std::string, Entry> entries TSE_GUARDED_BY(mu);
    std::list<std::string> lru TSE_GUARDED_BY(mu);  // front = most recent
    std::unordered_map<std::string, std::shared_ptr<Flight>> inflight
        TSE_GUARDED_BY(mu);
    size_t bytes_used TSE_GUARDED_BY(mu) = 0;
    // Parallel to the budget list.
    std::vector<size_t> budget_bytes TSE_GUARDED_BY(mu);
    size_t hits TSE_GUARDED_BY(mu) = 0;
    size_t misses TSE_GUARDED_BY(mu) = 0;
    size_t coalesced TSE_GUARDED_BY(mu) = 0;
    size_t evictions TSE_GUARDED_BY(mu) = 0;
    size_t budget_evictions TSE_GUARDED_BY(mu) = 0;
    size_t invalidations TSE_GUARDED_BY(mu) = 0;
  };
  struct Budget {
    std::string prefix;
    size_t per_shard = 0;
  };
  using BudgetList = std::vector<Budget>;
  using BudgetsPtr = std::shared_ptr<const BudgetList>;

  Shard& ShardFor(const std::string& key);
  BudgetsPtr SnapshotBudgets() const TSE_EXCLUDES(budgets_mu_);
  static int MatchBudget(const BudgetList& budgets, const std::string& key);
  // Removes one entry with exact byte/budget accounting; `it` must be
  // valid. Does NOT bump eviction/invalidation counters (callers do).
  static void RemoveEntryLocked(
      Shard& shard, std::unordered_map<std::string, Entry>::iterator it)
      TSE_REQUIRES(shard.mu);
  // Inserts under the shard lock, evicting (budget-scoped first, then
  // global LRU) until all bounds hold again.
  void InsertLocked(Shard& shard, const BudgetList& budgets,
                    const std::string& key, const ValuePtr& value)
      TSE_REQUIRES(shard.mu);

  size_t capacity_per_shard_;
  size_t shard_mask_;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable Mutex budgets_mu_;  // guards the budgets_ pointer swap
  BudgetsPtr budgets_ TSE_GUARDED_BY(budgets_mu_) =
      std::make_shared<const BudgetList>();
};

}  // namespace tsexplain

#endif  // TSEXPLAIN_SERVICE_RESULT_CACHE_H_
