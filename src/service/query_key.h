// Query canonicalization: maps a (dataset name, TSExplainConfig) pair to
// stable cache keys, so semantically identical queries share one cache
// entry and one hot engine no matter how the caller spelled them.
//
// Normalizations applied (each is covered by tests/test_query_key.cc):
//  * explain-by attribute order is irrelevant -> sorted + deduplicated;
//  * exclude-list order is irrelevant -> sorted + deduplicated;
//  * `threads` never affects results (bit-identical at any thread count)
//    -> dropped entirely;
//  * option payloads only count when their switch is on: filter_ratio
//    without use_filter, initial_guess without use_guess_verify, and
//    sketch_params without use_sketch are all normalized away, so a config
//    with a dangling payload equals the plain default config;
//  * max_k only matters when fixed_k == 0 (auto-K) -> dropped otherwise.
//
// Two keys come out:
//  * engine_key: the fields baked into a TSExplain instance at
//    construction (aggregate .. exclude). Queries with equal engine keys
//    share one hot engine in the DatasetRegistry.
//  * query_key: engine_key + the SegmentationSpec fields (fixed_k, max_k,
//    variance metric, sketch). The ResultCache keys on this.

#ifndef TSEXPLAIN_SERVICE_QUERY_KEY_H_
#define TSEXPLAIN_SERVICE_QUERY_KEY_H_

#include <string>

#include "src/pipeline/tsexplain.h"

namespace tsexplain {

struct CanonicalQuery {
  std::string engine_key;
  std::string query_key;
};

/// Canonicalizes `config` against dataset `dataset`. The dataset name is
/// embedded verbatim (names are registry-unique identifiers, not user
/// text). The config is taken as-is: unknown attribute names still
/// canonicalize (validation against a schema is the service's job).
CanonicalQuery CanonicalizeQuery(const std::string& dataset,
                                 const TSExplainConfig& config);

/// The common prefix of every key CanonicalizeQuery produces for
/// `dataset` — dropping a dataset invalidates cache entries under it.
std::string DatasetKeyPrefix(const std::string& dataset);

}  // namespace tsexplain

#endif  // TSEXPLAIN_SERVICE_QUERY_KEY_H_
