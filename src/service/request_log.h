// Line-oriented log sinks for the server: the NDJSON slow-query log and
// the one-line-per-request access log (tools/tsexplain_serve.cc wires
// them up from --slow-query-ms / --slow-query-log / --access-log).
//
// A LineLog is a mutex-serialized append sink: concurrent writers
// interleave at line granularity, never mid-record, and every line is
// flushed immediately so `tail -f` (and the smoke test) sees records the
// moment they happen. Record FORMATTING stays with the callers
// (protocol.cc), which is the only layer that sees both the request and
// the structured response.

#ifndef TSEXPLAIN_SERVICE_REQUEST_LOG_H_
#define TSEXPLAIN_SERVICE_REQUEST_LOG_H_

#include <cstdio>
#include <memory>
#include <string>

#include "src/common/mutex.h"

namespace tsexplain {

class LineLog {
 public:
  /// Opens `path` for append. The special path "stderr" logs to the
  /// process stderr (not closed on destruction). Returns null + `error`
  /// when the file cannot be opened.
  static std::unique_ptr<LineLog> Open(const std::string& path,
                                       std::string* error);

  /// Takes ownership of `stream` when `owned` (closed on destruction).
  LineLog(std::FILE* stream, bool owned) : stream_(stream), owned_(owned) {}
  ~LineLog();

  LineLog(const LineLog&) = delete;
  LineLog& operator=(const LineLog&) = delete;

  /// Appends `line` + '\n' and flushes. Thread-safe.
  void WriteLine(const std::string& line) TSE_EXCLUDES(mu_);

 private:
  Mutex mu_;
  // The stream is set once at construction; mu_ serializes every use so
  // lines from concurrent handler threads never interleave mid-record.
  std::FILE* stream_ TSE_GUARDED_BY(mu_);
  const bool owned_;
};

}  // namespace tsexplain

#endif  // TSEXPLAIN_SERVICE_REQUEST_LOG_H_
