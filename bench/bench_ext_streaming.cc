// Extension benches (not a paper table/figure): (1) the section 8
// streaming mode -- initial run vs incremental refresh latency as new
// buckets arrive; (2) multi-threaded module (c) scaling on one covid-sized
// run. Both print measured rows with shape checks.

#include <cstdio>

#include "bench_util.h"
#include "src/common/strings.h"
#include "src/common/timer.h"
#include "src/datagen/synthetic.h"
#include "src/pipeline/streaming.h"

namespace tsexplain {
namespace {

std::vector<StreamRow> BucketRows(const Table& source, TimeId t) {
  std::vector<StreamRow> rows;
  for (size_t r = 0; r < source.num_rows(); ++r) {
    if (source.time(r) != t) continue;
    StreamRow row;
    row.dims = {source.dictionary(0).ToString(source.dim(r, 0))};
    row.measures = {source.measure(r, 0)};
    rows.push_back(std::move(row));
  }
  return rows;
}

void RunStreaming() {
  bench::PrintHeader(
      "Extension: streaming refresh latency (section 8 real-time mode)");
  SyntheticConfig sconfig;
  sconfig.length = 300;
  sconfig.seed = 77;
  sconfig.num_interior_cuts = 6;
  const SyntheticDataset full = GenerateSynthetic(sconfig);

  // Seed with the first 250 buckets.
  Table prefix(full.table->schema());
  for (int t = 0; t < 250; ++t) {
    prefix.AddTimeBucket(full.table->time_labels()[static_cast<size_t>(t)]);
  }
  for (size_t r = 0; r < full.table->num_rows(); ++r) {
    if (full.table->time(r) < 250) {
      prefix.AppendRow(
          full.table->time(r),
          {full.table->dictionary(0).ToString(full.table->dim(r, 0))},
          {full.table->measure(r, 0)});
    }
  }

  TSExplainConfig config;
  config.measure = "value";
  config.explain_by_names = {"category"};
  config.max_order = 1;
  StreamingTSExplain engine(prefix, config);

  Timer initial_timer;
  engine.Explain();
  const double initial_ms = initial_timer.ElapsedMs();

  double refresh_total = 0.0;
  int refreshes = 0;
  for (int t = 250; t < 300; ++t) {
    engine.AppendBucket(
        full.table->time_labels()[static_cast<size_t>(t)],
        BucketRows(*full.table, static_cast<TimeId>(t)));
    if ((t - 249) % 5 == 0) {
      Timer refresh_timer;
      engine.Explain();
      refresh_total += refresh_timer.ElapsedMs();
      ++refreshes;
    }
  }
  const double refresh_ms = refresh_total / refreshes;
  bench::EmitResult("ext_streaming.initial", initial_ms);
  bench::EmitResult("ext_streaming.refresh_avg", refresh_ms);
  std::printf("  initial run (n=250):   %s\n",
              bench::FormatMs(initial_ms).c_str());
  std::printf("  incremental refresh:   %s (avg of %d refreshes while "
              "streaming to n=300)\n",
              bench::FormatMs(refresh_ms).c_str(), refreshes);
  std::printf("  shape check -- refresh >= 20x cheaper than the initial "
              "run: %s (%.0fx)\n",
              initial_ms >= 20.0 * refresh_ms ? "PASS" : "FAIL",
              initial_ms / refresh_ms);
}

void RunThreads() {
  bench::PrintHeader("Extension: module (c) thread scaling (covid total)");
  bench::Workload w = bench::MakeCovidTotalWorkload();
  double single_ms = 0.0;
  for (int threads : {1, 2, 4, 8}) {
    TSExplainConfig config = w.config;
    config.use_filter = true;
    config.use_guess_verify = true;
    config.threads = threads;
    Timer timer;
    TSExplain engine(*w.table, config);
    const TSExplainResult result = engine.Run();
    const double ms = timer.ElapsedMs();
    if (threads == 1) single_ms = ms;
    bench::EmitResult(StrFormat("ext_streaming.threads%d", threads), ms);
    std::printf("  threads=%d: %s  (K*=%d, variance %.3f)\n", threads,
                bench::FormatMs(ms).c_str(), result.chosen_k,
                result.segmentation.total_variance);
  }
  std::printf("  note: results are identical at every thread count "
              "(asserted by tests); 1-thread is the paper's setting "
              "(%.0f ms here).\n",
              single_ms);
}

}  // namespace
}  // namespace tsexplain

int main() {
  tsexplain::RunStreaming();
  tsexplain::RunThreads();
  return 0;
}
