// Reproduces paper Figure 14 + Table 5: segmentation of the Liquor
// bottles-sold series (paper found K*=7) over four explain-by attributes
// BV / P / CN / VN with conjunctions up to order 3. Expected shape: the
// surfaced explanations are about BV and P (large packs during the
// pandemic, the BV=1000 closure crash and reopening recovery), while CN
// and VN stay out of the top lists.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "src/common/timer.h"

namespace tsexplain {
namespace {

void Run() {
  bench::PrintHeader("Figure 14 / Table 5: Liquor");
  Timer timer;
  bench::Workload w = bench::MakeLiquorWorkload();
  w.config.use_filter = true;
  w.config.use_guess_verify = true;
  w.config.use_sketch = true;
  TSExplain engine(*w.table, w.config);
  const TSExplainResult result = bench::RunCaseStudy(w, engine);

  const bool k_in_band = result.chosen_k >= 4 && result.chosen_k <= 10;
  int bv_or_p = 0, cn_or_vn = 0, conjunctions = 0;
  bool bv1000 = false, pack12_up = false;
  for (const SegmentExplanation& seg : result.segments) {
    for (const ExplanationItem& item : seg.top) {
      if (item.description.find("BV=") != std::string::npos ||
          item.description.find("P=") != std::string::npos) {
        ++bv_or_p;
      }
      if (item.description.find("CN=") != std::string::npos ||
          item.description.find("VN=") != std::string::npos) {
        ++cn_or_vn;
      }
      if (item.description.find(" & ") != std::string::npos) ++conjunctions;
      if (item.description.find("BV=1000") != std::string::npos) {
        bv1000 = true;
      }
      if (item.description == "P=12" && item.tau > 0) pack12_up = true;
    }
  }
  std::printf("\n  shape check -- K* in [4, 10] (paper: 7): %s (K*=%d)\n",
              k_in_band ? "PASS" : "FAIL", result.chosen_k);
  std::printf("  shape check -- explanations are about BV/P, not CN/VN "
              "(%d vs %d): %s\n",
              bv_or_p, cn_or_vn, bv_or_p > cn_or_vn ? "PASS" : "FAIL");
  std::printf("  shape check -- BV=1000 (closure/recovery) surfaces: %s\n",
              bv1000 ? "PASS" : "FAIL");
  std::printf("  shape check -- P=12 rises somewhere (stock-up phases): "
              "%s\n",
              pack12_up ? "PASS" : "FAIL");
  std::printf("  shape check -- conjunction explanations appear (e.g. "
              "BV=1750 & P=6): %s (%d)\n",
              conjunctions > 0 ? "PASS" : "FAIL", conjunctions);
  std::printf("  epsilon: %zu (paper: 8197), filtered: %zu (paper: 1812)\n",
              result.epsilon, result.filtered_epsilon);
  std::printf("  total time: %s\n",
              bench::FormatMs(timer.ElapsedMs()).c_str());
  bench::EmitResult("fig14.liquor.total", timer.ElapsedMs());
}

}  // namespace
}  // namespace tsexplain

int main() {
  tsexplain::Run();
  return 0;
}
