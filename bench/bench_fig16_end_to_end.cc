// Reproduces paper Figure 16: end-to-end efficiency comparison. The
// explanation-agnostic baselines only segment, so (as in the paper) a CA
// explanation pass over their segments is added to make them comparable;
// TSExplain interleaves segmentation and explanation, so only its overall
// time is reported. K is the optimal K TSExplain found.
//
// Expected shape: FLUSS slowest, Bottom-Up / NNSegment in the middle,
// VanillaTSExplain comparable on Covid but slow on Liquor (epsilon), and
// optimized TSExplain fastest everywhere.

#include <cstdio>

#include "bench_util.h"
#include "src/baselines/bottom_up.h"
#include "src/baselines/fluss.h"
#include "src/baselines/nnsegment.h"
#include "src/common/timer.h"

namespace tsexplain {
namespace {

struct Row {
  const char* method;
  double segmentation_ms;
  double explanation_ms;
  double total() const { return segmentation_ms + explanation_ms; }
};

void Run() {
  bench::PrintHeader("Figure 16: end-to-end efficiency vs baselines");

  // The paper shows covid total / covid daily / liquor.
  std::vector<bench::Workload> workloads;
  workloads.push_back(bench::MakeCovidTotalWorkload());
  workloads.push_back(bench::MakeCovidDailyWorkload());
  workloads.push_back(bench::MakeLiquorWorkload());

  for (bench::Workload& w : workloads) {
    bench::PrintSubHeader(w.name);

    // Optimized TSExplain first: it supplies the optimal K for everyone.
    TSExplainConfig opt = w.config;
    bench::ApplyPreset(bench::OptPreset::kO1O2, &opt);
    Timer opt_timer;
    TSExplain opt_engine(*w.table, opt);
    const TSExplainResult opt_result = opt_engine.Run();
    const double opt_ms = opt_timer.ElapsedMs();
    const int k = opt_result.chosen_k;
    bench::EmitResult("fig16." + bench::ResultSlug(w.name) + ".optimized",
                      opt_ms);

    TSExplainConfig vanilla = w.config;
    bench::ApplyPreset(bench::OptPreset::kVanilla, &vanilla);
    vanilla.fixed_k = k;
    Timer vanilla_timer;
    TSExplain vanilla_engine(*w.table, vanilla);
    vanilla_engine.Run();
    const double vanilla_ms = vanilla_timer.ElapsedMs();
    bench::EmitResult("fig16." + bench::ResultSlug(w.name) + ".vanilla",
                      vanilla_ms);

    // Baselines segment the (smoothed) aggregated series, then explain
    // each of their segments with the CA module (fresh engine so cache
    // effects do not flatter them).
    const TimeSeries overall = vanilla_engine.cube().OverallSeries();
    std::vector<Row> rows;
    auto run_baseline = [&](const char* name, auto segment_fn) {
      Timer seg_timer;
      const std::vector<int> cuts = segment_fn();
      const double seg_ms = seg_timer.ElapsedMs();
      TSExplainConfig explain_config = w.config;
      bench::ApplyPreset(bench::OptPreset::kVanilla, &explain_config);
      Timer explain_timer;
      TSExplain explain_engine(*w.table, explain_config);
      for (size_t i = 0; i + 1 < cuts.size(); ++i) {
        explain_engine.ExplainSegment(cuts[i], cuts[i + 1]);
      }
      rows.push_back(Row{name, seg_ms, explain_timer.ElapsedMs()});
    };
    const int window = std::max(3, static_cast<int>(overall.size()) / 64);
    run_baseline("Bottom-Up",
                 [&] { return BottomUpSegment(overall.values, k); });
    run_baseline("FLUSS",
                 [&] { return FlussSegment(overall.values, k, window); });
    run_baseline("NNSegment",
                 [&] { return NnSegment(overall.values, k, window); });

    std::printf("  %-18s %14s %14s %14s\n", "method", "segmentation",
                "explanation", "overall");
    for (const Row& row : rows) {
      std::printf("  %-18s %s %s %s\n", row.method,
                  bench::FormatMs(row.segmentation_ms).c_str(),
                  bench::FormatMs(row.explanation_ms).c_str(),
                  bench::FormatMs(row.total()).c_str());
    }
    std::printf("  %-18s %14s %14s %s\n", "VanillaTSExplain", "-", "-",
                bench::FormatMs(vanilla_ms).c_str());
    std::printf("  %-18s %14s %14s %s   (K*=%d)\n", "TSExplain", "-", "-",
                bench::FormatMs(opt_ms).c_str(), k);

    // The paper reports TSExplain fastest outright; its baselines ran in
    // Python (stumpy FLUSS, authors' NNSegment), ours are optimized C++,
    // so the honest check here is (a) the optimization stack beats Vanilla
    // decisively and (b) TSExplain stays within a small factor of even
    // native-code shape-only baselines that skip the evolving-explanation
    // search entirely (see EXPERIMENTS.md).
    double fastest_baseline = vanilla_ms;
    for (const Row& row : rows) {
      fastest_baseline = std::min(fastest_baseline, row.total());
    }
    std::printf("  shape check -- optimized beats Vanilla by >= 5x: %s "
                "(%.1fx)\n",
                vanilla_ms >= 5.0 * opt_ms ? "PASS" : "FAIL",
                vanilla_ms / opt_ms);
    std::printf("  note -- TSExplain vs fastest C++ baseline+explanation: "
                "%.1fx (paper's Python baselines were slower than "
                "TSExplain)\n",
                opt_ms / fastest_baseline);
  }
}

}  // namespace
}  // namespace tsexplain

int main() {
  tsexplain::Run();
  return 0;
}
