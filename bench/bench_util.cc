#include "bench_util.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

#include "src/baselines/bottom_up.h"
#include "src/baselines/fluss.h"
#include "src/baselines/nnsegment.h"
#include "src/common/metrics.h"
#include "src/common/strings.h"
#include "src/datagen/covid_sim.h"
#include "src/datagen/liquor_sim.h"
#include "src/datagen/sp500_sim.h"

namespace tsexplain {
namespace bench {

Workload MakeCovidTotalWorkload() {
  Workload w;
  w.name = "total-confirmed-cases";
  w.table = MakeCovidTable();
  w.config.measure = "total_confirmed_cases";
  w.config.explain_by_names = {"state"};
  w.config.max_order = 3;  // single attribute, so effectively order 1
  w.config.m = 3;
  return w;
}

Workload MakeCovidDailyWorkload() {
  Workload w;
  w.name = "daily-confirmed-cases";
  w.table = MakeCovidTable();
  w.config.measure = "daily_confirmed_cases";
  w.config.explain_by_names = {"state"};
  w.config.max_order = 3;
  w.config.m = 3;
  w.config.smooth_window = 7;  // the paper smooths fuzzy datasets (7.4)
  return w;
}

Workload MakeSp500Workload() {
  Workload w;
  w.name = "S&P 500";
  w.table = MakeSp500Table();
  w.config.measure = "weighted_price";
  w.config.explain_by_names = {"category", "subcategory", "stock"};
  w.config.max_order = 3;
  w.config.m = 3;
  return w;
}

Workload MakeLiquorWorkload() {
  Workload w;
  w.name = "Liquor";
  w.table = MakeLiquorTable();
  w.config.measure = "bottles_sold";
  w.config.explain_by_names = {"BV", "P", "CN", "VN"};
  w.config.max_order = 3;
  w.config.m = 3;
  w.config.smooth_window = 5;  // business-day series is fuzzy too
  return w;
}

std::vector<Workload> AllWorkloads() {
  std::vector<Workload> all;
  all.push_back(MakeCovidTotalWorkload());
  all.push_back(MakeCovidDailyWorkload());
  all.push_back(MakeSp500Workload());
  all.push_back(MakeLiquorWorkload());
  return all;
}

const char* PresetName(OptPreset preset) {
  switch (preset) {
    case OptPreset::kVanilla:
      return "Vanilla";
    case OptPreset::kFilter:
      return "w filter";
    case OptPreset::kO1:
      return "O1";
    case OptPreset::kO2:
      return "O2";
    case OptPreset::kO1O2:
      return "O1+O2";
  }
  return "?";
}

void ApplyPreset(OptPreset preset, TSExplainConfig* config) {
  config->use_filter = preset != OptPreset::kVanilla;
  config->use_guess_verify =
      preset == OptPreset::kO1 || preset == OptPreset::kO1O2;
  config->use_sketch =
      preset == OptPreset::kO2 || preset == OptPreset::kO1O2;
}

void PrintHeader(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

void PrintSubHeader(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

std::string FormatMs(double ms) { return StrFormat("%8.1f ms", ms); }

std::string ResultSlug(const std::string& text) {
  std::string slug;
  slug.reserve(text.size());
  bool last_was_sep = true;  // also trims leading separators
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
      last_was_sep = false;
    } else if (!last_was_sep) {
      slug.push_back('_');
      last_was_sep = true;
    }
  }
  while (!slug.empty() && slug.back() == '_') slug.pop_back();
  return slug;
}

void EmitResult(const std::string& name, double ms) {
  std::printf("BENCH_RESULT %s %.3f\n", name.c_str(), ms);
}

void EmitMetricsSnapshot() {
  std::printf(
      "BENCH_METRICS %s\n",
      RenderMetricsJson(MetricRegistry::Global().Snapshot()).c_str());
}

void PrintAsciiChart(const TimeSeries& ts, const std::vector<int>& cuts,
                     int height, int width) {
  const int n = static_cast<int>(ts.size());
  if (n == 0) return;
  width = std::min(width, n);
  double lo = ts.values[0], hi = ts.values[0];
  for (double v : ts.values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double range = hi - lo > 0 ? hi - lo : 1.0;

  std::vector<std::string> rows(static_cast<size_t>(height),
                                std::string(static_cast<size_t>(width), ' '));
  for (int col = 0; col < width; ++col) {
    const int t = col * (n - 1) / (width - 1 > 0 ? width - 1 : 1);
    const double v = ts.values[static_cast<size_t>(t)];
    int level = static_cast<int>((v - lo) / range * (height - 1) + 0.5);
    level = std::clamp(level, 0, height - 1);
    rows[static_cast<size_t>(height - 1 - level)]
        [static_cast<size_t>(col)] = '*';
  }
  // Overlay cut markers.
  for (int cut : cuts) {
    const int col = cut * (width - 1) / (n - 1 > 0 ? n - 1 : 1);
    for (int r = 0; r < height; ++r) {
      char& cell = rows[static_cast<size_t>(r)][static_cast<size_t>(col)];
      if (cell == ' ') cell = '|';
    }
  }
  for (const std::string& row : rows) std::printf("  %s\n", row.c_str());
}

void PrintSegmentsTable(const TSExplainResult& result) {
  std::printf("  %-16s %-34s %-34s %-34s\n", "Segment", "Top-1 Expl",
              "Top-2 Expl", "Top-3 Expl");
  for (const SegmentExplanation& seg : result.segments) {
    std::string cols[3];
    for (size_t r = 0; r < 3; ++r) {
      cols[r] = r < seg.top.size() ? seg.top[r].ToString() : "-";
    }
    std::printf("  %-16s %-34s %-34s %-34s\n",
                (seg.begin_label + " ~" + seg.end_label).c_str(),
                cols[0].c_str(), cols[1].c_str(), cols[2].c_str());
  }
}

void PrintCutDates(const std::string& label, const std::vector<int>& cuts,
                   const std::vector<std::string>& time_labels) {
  std::vector<std::string> parts;
  for (int cut : cuts) {
    parts.push_back(time_labels[static_cast<size_t>(cut)]);
  }
  std::printf("  %-14s %s\n", label.c_str(), Join(parts, " | ").c_str());
}

BaselineCuts RunBaselines(const std::vector<double>& values, int k,
                          int window) {
  BaselineCuts cuts;
  cuts.window = window > 0
                    ? window
                    : std::max(3, static_cast<int>(values.size()) / 64);
  cuts.bottom_up = BottomUpSegment(values, k);
  cuts.fluss = FlussSegment(values, k, cuts.window);
  cuts.nnsegment = NnSegment(values, k, cuts.window);
  return cuts;
}

int CountIdenticalNeighborSegments(TSExplain& engine,
                                   const std::vector<int>& cuts) {
  int identical = 0;
  for (size_t i = 0; i + 2 < cuts.size(); ++i) {
    const auto left = engine.ExplainSegment(cuts[i], cuts[i + 1]);
    const auto right = engine.ExplainSegment(cuts[i + 1], cuts[i + 2]);
    if (left.size() != right.size()) continue;
    bool same = true;
    for (size_t r = 0; r < left.size(); ++r) {
      if (left[r].id != right[r].id || left[r].tau != right[r].tau) {
        same = false;
        break;
      }
    }
    if (same) ++identical;
  }
  return identical;
}

TSExplainResult RunCaseStudy(Workload& w, TSExplain& engine) {
  const TSExplainResult result = engine.Run();
  const TimeSeries overall = engine.cube().OverallSeries();

  PrintSubHeader("aggregated series (smoothed view the engine explains)");
  PrintAsciiChart(overall, result.segmentation.cuts, 10);

  PrintSubHeader(StrFormat("TSExplain: optimal K* = %d (elbow), "
                           "total variance %.3f",
                           result.chosen_k,
                           result.segmentation.total_variance));
  PrintCutDates("TSExplain", result.segmentation.cuts, overall.labels);
  PrintSegmentsTable(result);

  std::printf("\n  K-variance curve (K : D(n,K)):");
  for (size_t k = 0; k < result.k_variance_curve.size(); ++k) {
    if (k % 5 == 0) std::printf("\n   ");
    std::printf(" %2zu:%8.3f", k + 1, result.k_variance_curve[k]);
  }
  std::printf("\n");

  PrintSubHeader("explanation-agnostic baselines at the same K");
  const BaselineCuts baselines =
      RunBaselines(overall.values, result.chosen_k);
  std::printf("  (FLUSS / NNSegment window = %d)\n", baselines.window);
  PrintCutDates("Bottom-Up", baselines.bottom_up, overall.labels);
  PrintCutDates("FLUSS", baselines.fluss, overall.labels);
  PrintCutDates("NNSegment", baselines.nnsegment, overall.labels);

  PrintSubHeader(
      "diversity diagnostic: adjacent segments with IDENTICAL top "
      "explanations (paper: baselines repeat themselves)");
  std::printf("  TSExplain: %d   Bottom-Up: %d   FLUSS: %d   NNSegment: %d\n",
              CountIdenticalNeighborSegments(engine,
                                             result.segmentation.cuts),
              CountIdenticalNeighborSegments(engine, baselines.bottom_up),
              CountIdenticalNeighborSegments(engine, baselines.fluss),
              CountIdenticalNeighborSegments(engine, baselines.nnsegment));
  (void)w;
  return result;
}

}  // namespace bench
}  // namespace tsexplain
