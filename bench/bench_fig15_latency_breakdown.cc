// Reproduces paper Figure 15: TSExplain latency breakdown (precomputation
// / cascading analysts / K-segmentation) under the optimization presets
// Vanilla, w-filter, O1, O2, O1+O2, for all four real-world datasets. K is
// unspecified (elbow selection included, as in the paper).
//
// Expected shape: filtering matters little for Covid (epsilon barely
// shrinks) but a lot for S&P 500 / Liquor; O2 (sketching) dominates when n
// is large (Covid); O1 (guess-and-verify) dominates when epsilon is large
// (Liquor); O1+O2 is fastest overall. Absolute numbers differ from the
// paper's M1 laptop.

#include <cstdio>

#include "bench_util.h"
#include "src/common/timer.h"

namespace tsexplain {
namespace {

void Run() {
  bench::PrintHeader("Figure 15: latency breakdown per optimization preset");

  for (bench::Workload& w : bench::AllWorkloads()) {
    bench::PrintSubHeader(w.name);
    std::printf("  %-10s %14s %14s %14s %14s\n", "preset", "precompute",
                "cascading", "segmentation", "TOTAL");
    double vanilla_total = 0.0, best_total = 1e18;
    for (bench::OptPreset preset : bench::kAllPresets) {
      TSExplainConfig config = w.config;
      bench::ApplyPreset(preset, &config);
      Timer timer;
      TSExplain engine(*w.table, config);
      const TSExplainResult result = engine.Run();
      const double wall = timer.ElapsedMs();
      std::printf("  %-10s %s %s %s %s  (wall %s)\n",
                  bench::PresetName(preset),
                  bench::FormatMs(result.timing.precompute_ms).c_str(),
                  bench::FormatMs(result.timing.cascading_ms).c_str(),
                  bench::FormatMs(result.timing.segmentation_ms).c_str(),
                  bench::FormatMs(result.timing.TotalMs()).c_str(),
                  bench::FormatMs(wall).c_str());
      bench::EmitResult("fig15." + bench::ResultSlug(w.name) + "." +
                            bench::ResultSlug(bench::PresetName(preset)),
                        result.timing.TotalMs());
      if (preset == bench::OptPreset::kVanilla) {
        vanilla_total = result.timing.TotalMs();
      }
      best_total = std::min(best_total, result.timing.TotalMs());
    }
    std::printf("  speedup Vanilla -> best preset: %.1fx\n",
                vanilla_total / best_total);
  }
}

}  // namespace
}  // namespace tsexplain

int main() {
  tsexplain::Run();
  return 0;
}
