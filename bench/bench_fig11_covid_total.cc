// Reproduces paper Figure 11 (and Figure 2): segmentation of the Covid
// total-confirmed-cases series with TSExplain (elbow K, paper found K*=6)
// vs Bottom-Up / FLUSS / NNSegment, plus the evolving top-3 explanations.
// Expected shape: WA/NY early, NY+NJ+MA spring, CA/TX/FL/IL later; the
// baselines show repeated / late explanations.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "bench_util.h"
#include "src/common/timer.h"

namespace tsexplain {
namespace {

bool SegmentTopContains(const SegmentExplanation& seg,
                        const std::string& needle) {
  for (const ExplanationItem& item : seg.top) {
    if (item.description.find(needle) != std::string::npos) return true;
  }
  return false;
}

void Run() {
  bench::PrintHeader("Figure 11 / Figure 2: Covid total-confirmed-cases");
  Timer timer;
  bench::Workload w = bench::MakeCovidTotalWorkload();
  w.config.use_filter = true;
  w.config.use_guess_verify = true;
  TSExplain engine(*w.table, w.config);
  const TSExplainResult result = bench::RunCaseStudy(w, engine);

  // Shape checks against the paper's narrative.
  const bool k_in_band = result.chosen_k >= 4 && result.chosen_k <= 9;
  bool ny_early = false, ca_late = false;
  const size_t mid = result.segments.size() / 2;
  for (size_t i = 0; i < result.segments.size(); ++i) {
    if (i <= mid && SegmentTopContains(result.segments[i], "state=NY")) {
      ny_early = true;
    }
    if (i >= mid && SegmentTopContains(result.segments[i], "state=CA")) {
      ca_late = true;
    }
  }
  std::printf("\n  shape check -- K* in [4, 9] (paper: 6): %s (K*=%d)\n",
              k_in_band ? "PASS" : "FAIL", result.chosen_k);
  std::printf("  shape check -- NY drives an early segment: %s\n",
              ny_early ? "PASS" : "FAIL");
  std::printf("  shape check -- CA drives a late segment: %s\n",
              ca_late ? "PASS" : "FAIL");

  // Section 7.4.4: "a slight change of the optimal K will only bring up a
  // slight shift in the results". Compare K*-1 / K* / K*+1 cut sets.
  bench::PrintSubHeader("sensitivity to K (section 7.4.4)");
  for (int k : {result.chosen_k - 1, result.chosen_k + 1}) {
    if (k < 1) continue;
    TSExplainConfig sensitivity_config = w.config;
    sensitivity_config.fixed_k = k;
    TSExplain sensitivity_engine(*w.table, sensitivity_config);
    const TSExplainResult shifted = sensitivity_engine.Run();
    // Count cuts of the smaller scheme missing from the larger one.
    int unmatched = 0;
    for (int cut : shifted.segmentation.cuts) {
      bool found = false;
      for (int base_cut : result.segmentation.cuts) {
        if (std::abs(cut - base_cut) <= 2) found = true;
      }
      if (!found) ++unmatched;
    }
    std::printf("  K=%d: %d cut(s) not shared with the K*=%d scheme "
                "(paper: ~1)\n",
                k, unmatched, result.chosen_k);
  }
  std::printf("  total time: %s\n",
              bench::FormatMs(timer.ElapsedMs()).c_str());
  bench::EmitResult("fig11.covid_total.total", timer.ElapsedMs());
}

}  // namespace
}  // namespace tsexplain

int main() {
  tsexplain::Run();
  return 0;
}
