// Reproduces paper Figure 12 + Table 3: segmentation of the Covid
// daily-confirmed-cases series (smoothed; paper found K*=7) with the
// per-segment top-3 explanations and their +/- change effects.
// Expected shape: NY/NJ/MA rise in spring, NY/NJ decline with CA rising
// after, southern states in summer, midwest in fall, CA/NY in winter --
// with DECLINES (tau = -) visible, unlike the total series.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "src/common/timer.h"

namespace tsexplain {
namespace {

void Run() {
  bench::PrintHeader("Figure 12 / Table 3: Covid daily-confirmed-cases");
  Timer timer;
  bench::Workload w = bench::MakeCovidDailyWorkload();
  w.config.use_filter = true;
  w.config.use_guess_verify = true;
  TSExplain engine(*w.table, w.config);
  const TSExplainResult result = bench::RunCaseStudy(w, engine);

  const bool k_in_band = result.chosen_k >= 4 && result.chosen_k <= 10;
  bool any_decline = false;
  bool ny_surge = false, ny_decline = false;
  for (const SegmentExplanation& seg : result.segments) {
    for (const ExplanationItem& item : seg.top) {
      if (item.tau < 0) any_decline = true;
      if (item.description == "state=NY" && item.tau > 0) ny_surge = true;
      if (item.description == "state=NY" && item.tau < 0) ny_decline = true;
    }
  }
  std::printf("\n  shape check -- K* in [4, 10] (paper: 7): %s (K*=%d)\n",
              k_in_band ? "PASS" : "FAIL", result.chosen_k);
  std::printf("  shape check -- declining explanations appear (Table 3 has "
              "'-' effects): %s\n",
              any_decline ? "PASS" : "FAIL");
  std::printf("  shape check -- NY appears both rising and declining: %s\n",
              (ny_surge && ny_decline) ? "PASS" : "FAIL");
  std::printf("  total time: %s\n",
              bench::FormatMs(timer.ElapsedMs()).c_str());
  bench::EmitResult("fig12.covid_daily.total", timer.ElapsedMs());
}

}  // namespace
}  // namespace tsexplain

int main() {
  tsexplain::Run();
  return 0;
}
