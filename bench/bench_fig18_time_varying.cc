// Reproduces paper Figure 18 (section 8): explaining the weekly
// covid-deaths series with the TIME-VARYING attribute `vaccinated`
// alongside the static `age-group`. Expected shape: the early segments are
// driven by vaccinated=NO; the late segments by age-group=50+.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "src/common/timer.h"
#include "src/datagen/deaths_sim.h"
#include "src/pipeline/tsexplain.h"

namespace tsexplain {
namespace {

void Run() {
  bench::PrintHeader(
      "Figure 18: time-varying attribute case study (weekly total deaths, "
      "weeks 14-52 of 2021)");
  Timer timer;
  const auto table = MakeDeathsTable();
  TSExplainConfig config;
  config.measure = "deaths";
  config.explain_by_names = {"vaccinated", "age-group"};
  config.max_order = 2;
  TSExplain engine(*table, config);
  const TSExplainResult result = engine.Run();

  const TimeSeries overall = engine.cube().OverallSeries();
  std::printf("\n  weekly total deaths ('|' marks TSExplain cuts):\n");
  bench::PrintAsciiChart(overall, result.segmentation.cuts, 10, 78);
  bench::PrintCutDates("cut weeks", result.segmentation.cuts,
                       overall.labels);
  bench::PrintSegmentsTable(result);

  const std::string& first_top =
      result.segments.front().top.empty()
          ? ""
          : result.segments.front().top[0].description;
  bool late_elders = false;
  for (const ExplanationItem& item : result.segments.back().top) {
    if (item.description.find("age-group=50+") != std::string::npos) {
      late_elders = true;
    }
  }
  std::printf("\n  shape check -- early segment driven by vaccinated=NO: "
              "%s (top-1: %s)\n",
              first_top.find("vaccinated=NO") != std::string::npos
                  ? "PASS"
                  : "FAIL",
              first_top.c_str());
  std::printf("  shape check -- late segment driven by age-group=50+: %s\n",
              late_elders ? "PASS" : "FAIL");
  std::printf("  total time: %s\n",
              bench::FormatMs(timer.ElapsedMs()).c_str());
}

}  // namespace
}  // namespace tsexplain

int main() {
  tsexplain::Run();
  return 0;
}
