// Reproduces paper Figure 6: the average rank of all eight within-segment
// variance metrics at each SNR level. Expected shape: tse has the best
// (lowest) average rank at every SNR; at SNR = 50 every metric ranks the
// ground truth first (so all ranks tie).

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "src/common/strings.h"
#include "src/common/timer.h"
#include "src/datagen/synthetic.h"
#include "src/eval/metric_comparison.h"

namespace tsexplain {
namespace {

// The paper samples 10000 random schemes; that is cheap with the
// precomputed variance tables but we keep a margin for the full 7x20 grid.
constexpr int kSamples = 10000;
constexpr int kDatasets = 20;

void Run() {
  bench::PrintHeader(
      "Figure 6: average metric rank vs SNR "
      "(20 datasets x 7 SNR levels, 10000 sampled schemes each)");
  Timer timer;

  const std::vector<double> snrs = PaperSnrLevels();
  // avg_rank[snr][metric]
  std::vector<std::vector<double>> avg_rank(
      snrs.size(), std::vector<double>(8, 0.0));

  for (size_t s = 0; s < snrs.size(); ++s) {
    for (int d = 0; d < kDatasets; ++d) {
      SyntheticConfig config;
      config.seed = static_cast<uint64_t>(d) + 1;  // same 20 shapes per SNR
      config.snr_db = snrs[s];
      const SyntheticDataset ds = GenerateSynthetic(config);

      const auto registry = ExplanationRegistry::Build(*ds.table, {0}, 1);
      const ExplanationCube cube(*ds.table, registry,
                                 AggregateFunction::kSum, 0);
      SegmentExplainer::Options options;
      options.m = 3;
      SegmentExplainer explainer(cube, registry, options);

      const MetricComparisonResult cmp = CompareVarianceMetrics(
          explainer, ds.ground_truth_cuts, kSamples,
          /*seed=*/1000 + static_cast<uint64_t>(d), /*threads=*/8);
      for (size_t metric = 0; metric < 8; ++metric) {
        avg_rank[s][metric] += cmp.metric_rank[metric] / kDatasets;
      }
    }
  }

  std::printf("\n  %-6s", "SNR");
  for (VarianceMetric metric : kAllVarianceMetrics) {
    std::printf(" %9s", VarianceMetricName(metric));
  }
  std::printf("\n");
  for (size_t s = 0; s < snrs.size(); ++s) {
    std::printf("  %-6.0f", snrs[s]);
    for (size_t metric = 0; metric < 8; ++metric) {
      std::printf(" %9.2f", avg_rank[s][metric]);
    }
    std::printf("\n");
  }

  // Shape checks. The paper reports tse never beaten and all metrics
  // ranking 1st at SNR 50. On our simulated data tse and dist1 are
  // statistically tied for best (gap <= 0.75 rank) with every other
  // alternative clearly behind, and the high-SNR convergence reproduces
  // exactly (see EXPERIMENTS.md for the discussion).
  bool tse_near_best = true;
  bool tse_beats_non_dist1 = true;
  bool converged_high_snr = true;
  for (size_t s = 0; s < snrs.size(); ++s) {
    double best = avg_rank[s][0];
    for (size_t metric = 1; metric < 8; ++metric) {
      best = std::min(best, avg_rank[s][metric]);
    }
    if (avg_rank[s][0] > best + 0.75) tse_near_best = false;
    for (size_t metric = 2; metric < 8; ++metric) {  // skip dist1 (idx 1)
      // 0.2-rank tolerance: near-clean levels produce many exact ties and
      // coin-flip rank splits among the leaders.
      if (snrs[s] <= 40.0 && avg_rank[s][0] > avg_rank[s][metric] + 0.2) {
        tse_beats_non_dist1 = false;
      }
    }
    if (snrs[s] >= 45.0) {
      for (size_t metric = 0; metric < 8; ++metric) {
        if (avg_rank[s][metric] > 1.0 + 1e-9) converged_high_snr = false;
      }
    }
  }
  std::printf("\n  shape check -- tse within 0.75 of the best rank at every "
              "SNR: %s\n",
              tse_near_best ? "PASS" : "FAIL");
  std::printf("  shape check -- tse ties-or-beats every non-dist1 "
              "alternative for SNR <= 40 (0.2 tolerance): %s\n",
              tse_beats_non_dist1 ? "PASS" : "FAIL");
  std::printf("  shape check -- all metrics rank 1st at SNR >= 45 (paper: "
              "same at 50 dB): %s\n",
              converged_high_snr ? "PASS" : "FAIL");
  std::printf("  total time: %s\n", bench::FormatMs(timer.ElapsedMs()).c_str());
}

}  // namespace
}  // namespace tsexplain

int main() {
  tsexplain::Run();
  return 0;
}
