// Reproduces paper Table 6: real-world dataset statistics -- candidate
// explanation count (epsilon), count after the support filter, and the
// time-series length n.
//
//   paper:  total-confirmed-cases   58 /   54 / 345
//           daily-confirmed-cases   58 /   55 / 345
//           S&P 500                610 /  329 / 151
//           Liquor                8197 / 1812 / 128

#include <cstdio>

#include "bench_util.h"
#include "src/common/timer.h"
#include "src/cube/canonical_mask.h"
#include "src/cube/support_filter.h"

namespace tsexplain {
namespace {

void Run() {
  bench::PrintHeader("Table 6: real-world dataset statistics");
  Timer timer;
  std::printf("\n  %-26s %10s %12s %6s\n", "dataset", "epsilon",
              "filtered", "n");

  for (bench::Workload& w : bench::AllWorkloads()) {
    std::vector<AttrId> attrs;
    for (const std::string& name : w.config.explain_by_names) {
      attrs.push_back(w.table->schema().DimensionIndex(name));
    }
    const auto registry =
        ExplanationRegistry::Build(*w.table, attrs, w.config.max_order);
    const int measure_idx =
        w.table->schema().MeasureIndex(w.config.measure);
    ExplanationCube cube(*w.table, registry, AggregateFunction::kSum,
                         measure_idx);
    if (w.config.smooth_window > 1) {
      cube.SmoothInPlace(w.config.smooth_window);
    }
    const auto canonical = ComputeCanonicalMask(cube, registry);
    const auto filtered =
        AndMasks(canonical, ComputeSupportFilter(cube));
    std::printf("  %-26s %10zu %12zu %6zu\n", w.name.c_str(),
                CountActive(canonical), CountActive(filtered), cube.n());
  }
  std::printf("\n  (epsilon counts hierarchy-deduped candidate cells; see "
              "DESIGN.md)\n");
  std::printf("  total time: %s\n",
              bench::FormatMs(timer.ElapsedMs()).c_str());
}

}  // namespace
}  // namespace tsexplain

int main() {
  tsexplain::Run();
  return 0;
}
