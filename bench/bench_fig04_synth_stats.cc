// Reproduces paper Figure 4 (distribution of segment number K and segment
// length over the 20 synthetic datasets) and Figure 5 (one example series
// at SNR = 35).

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "src/datagen/synthetic.h"
#include "src/table/group_by.h"

namespace tsexplain {
namespace {

void PrintHistogram(const std::map<int, int>& histogram, const char* unit) {
  for (const auto& [bucket, count] : histogram) {
    std::printf("  %4d %-4s | %s (%d)\n", bucket, unit,
                std::string(static_cast<size_t>(count), '#').c_str(), count);
  }
}

void Run() {
  bench::PrintHeader(
      "Figure 4: segment-count and segment-length distribution "
      "(20 synthetic datasets, n = 100)");

  std::map<int, int> k_histogram;
  std::map<int, int> length_histogram;  // bucketed by 10
  int total_segments = 0;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    SyntheticConfig config;
    config.seed = seed;
    const SyntheticDataset ds = GenerateSynthetic(config);
    ++k_histogram[ds.ground_truth_k()];
    for (size_t i = 0; i + 1 < ds.ground_truth_cuts.size(); ++i) {
      const int len =
          ds.ground_truth_cuts[i + 1] - ds.ground_truth_cuts[i];
      ++length_histogram[len / 10 * 10];
      ++total_segments;
    }
  }

  bench::PrintSubHeader("segment number K (paper: K varies 2..10)");
  PrintHistogram(k_histogram, "K");
  bench::PrintSubHeader("segment length, bucketed by 10 (paper: 6..84)");
  PrintHistogram(length_histogram, "+");
  std::printf("  total segments: %d\n", total_segments);

  bench::PrintHeader("Figure 5: example synthetic series at SNR = 35");
  SyntheticConfig config;
  config.seed = 4;
  config.snr_db = 35.0;
  const SyntheticDataset ds = GenerateSynthetic(config);
  const TimeSeries agg = GroupByTime(*ds.table, AggregateFunction::kSum, 0);
  std::printf("  ground-truth cuts: ");
  for (int cut : ds.ground_truth_cuts) std::printf("%d ", cut);
  std::printf("\n  aggregated series ('|' marks ground-truth cuts):\n");
  bench::PrintAsciiChart(agg, ds.ground_truth_cuts, 12);
  for (size_t c = 0; c < ds.noisy.size(); ++c) {
    std::printf("  category a%zu:\n", c + 1);
    bench::PrintAsciiChart(TimeSeries(ds.noisy[c]), ds.category_cuts[c], 6);
  }
}

}  // namespace
}  // namespace tsexplain

int main() {
  tsexplain::Run();
  return 0;
}
