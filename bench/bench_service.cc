// Service-layer throughput: what the explanation service buys over the
// one-cold-query-per-process CLI workflow.
//
// Measurements on the covid-daily workload (plus k-variants that share
// one hot engine):
//   service.cold.per_query_ms   — first-touch queries: engine build + full
//                                 pipeline run per distinct query key
//   service.hot.per_query_ms    — the same queries again: pure cache hits
//   service.hot.p50_ms / p99_ms — cache-hit latency percentiles (the
//                                 overload acceptance bar tracks p50)
//   service.concurrent.per_query_ms
//                               — 8 client threads, mixed hot/cold traffic
//                                 against a fresh service
//   service.hot.speedup_x       — cold / hot per-query time; the ISSUE
//                                 acceptance bar is >= 10x
//   service.metrics.overhead_pct
//                               — the hot path's metric op pair (one
//                                 Counter::Inc + one Histogram::Observe)
//                                 as a percentage of hot p50; the
//                                 observability acceptance bar is < 5%
//   service.history.per_tick_us / overhead_pct
//                               — one metrics-history sampling tick over
//                                 the full service registry, and its duty
//                                 cycle at the 100 ms default interval;
//                                 the self-observation bar is < 1% of
//                                 hot-path time
//   service.hot.sampled_p50_ms  — hot p50 re-measured with the sampler
//                                 live at 100 ms (informational)
//
// Overload scenario (admission control, synthetic dataset): clients at
// TSE_OVERLOAD_X times the admission capacity (max_inflight +
// queue_depth; default 4x, CI --quick sets 2x) fire a cold+hot mix at a
// small service. Asserts that excess load is SHED with structured
// `overloaded` responses carrying retry_after_ms, that the admission
// queue never exceeded its bound (no unbounded queue growth), and that
// every ACCEPTED response is bit-identical to a serial TSExplain::Run of
// the same query. Emits:
//   service.overload.shed_rate_pct
//   service.overload.accepted_p50_ms / accepted_p99_ms
//
// Emits BENCH_RESULT lines for tools/run_benches.sh (values in ms except
// the explicitly-suffixed speedup ratio / shed rate).

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "src/common/metrics.h"
#include "src/common/metrics_history.h"
#include "src/common/timer.h"
#include "src/datagen/synthetic.h"
#include "src/service/explain_service.h"

namespace tsexplain {
namespace {

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  return values[static_cast<size_t>(rank + 0.5)];
}

bool IdenticalResults(const TSExplainResult& a, const TSExplainResult& b) {
  if (a.segmentation.cuts != b.segmentation.cuts) return false;
  if (a.chosen_k != b.chosen_k) return false;
  if (a.k_variance_curve != b.k_variance_curve) return false;
  if (a.segments.size() != b.segments.size()) return false;
  for (size_t s = 0; s < a.segments.size(); ++s) {
    const SegmentExplanation& sa = a.segments[s];
    const SegmentExplanation& sb = b.segments[s];
    if (sa.begin != sb.begin || sa.end != sb.end ||
        sa.variance != sb.variance || sa.top.size() != sb.top.size()) {
      return false;
    }
    for (size_t r = 0; r < sa.top.size(); ++r) {
      if (sa.top[r].id != sb.top[r].id ||
          sa.top[r].gamma != sb.top[r].gamma ||
          sa.top[r].tau != sb.top[r].tau) {
        return false;
      }
    }
  }
  return true;
}

std::vector<ExplainRequest> MakeQueryMix(const TSExplainConfig& base) {
  // Distinct query keys: k variants (one shared engine) + m / smoothing
  // variants (their own engines). Mirrors an analyst sweeping parameters.
  std::vector<ExplainRequest> requests;
  for (int k : {0, 3, 4, 5, 6}) {
    ExplainRequest request;
    request.dataset = "covid_daily";
    request.config = base;
    request.config.fixed_k = k;
    requests.push_back(request);
  }
  for (int m : {1, 5}) {
    ExplainRequest request;
    request.dataset = "covid_daily";
    request.config = base;
    request.config.m = m;
    requests.push_back(request);
  }
  ExplainRequest unsmoothed;
  unsmoothed.dataset = "covid_daily";
  unsmoothed.config = base;
  unsmoothed.config.smooth_window = 1;  // base smooths with window 7
  requests.push_back(unsmoothed);
  return requests;
}

// Overload scenario: N-times-capacity concurrent cold+hot mix against a
// deliberately small admission configuration. Returns having asserted
// shedding happened structurally, the queue bound held, and every
// accepted result is bit-identical to its serial execution.
void RunOverload() {
  bench::PrintSubHeader("Overload: admission control under excess load");

  int overload_x = 4;
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once, single-threaded main
  if (const char* env = std::getenv("TSE_OVERLOAD_X")) {
    const int parsed = std::atoi(env);
    if (parsed >= 1) overload_x = parsed;
  }

  // Small-but-real synthetic workload: cold queries cost milliseconds,
  // so the storm saturates admission without taking minutes on CI.
  SyntheticConfig synth;
  synth.length = 96;
  synth.num_categories = 6;
  synth.snr_db = 25.0;
  synth.num_interior_cuts = 3;
  synth.seed = 1234;
  SyntheticDataset ds = GenerateSynthetic(synth);
  const std::shared_ptr<const Table> table(std::move(ds.table));

  TSExplainConfig base;
  base.measure = "value";
  base.explain_by_names = {"category"};
  base.max_order = 1;
  base.threads = 0;  // auto; the admission grant caps it anyway

  // Query variants: k-sweep (one shared engine) + m-variants (their own
  // engines). Variant 0 is pre-warmed and serves as the hot traffic.
  std::vector<TSExplainConfig> variants;
  for (int k : {2, 3, 4, 5, 6, 7}) {
    TSExplainConfig config = base;
    config.fixed_k = k;
    variants.push_back(config);
  }
  for (int m : {1, 2, 4, 5}) {
    TSExplainConfig config = base;
    config.m = m;
    variants.push_back(config);
  }

  // Serial ground truth (the determinism bar): one engine per variant,
  // run outside any service.
  std::vector<TSExplainResult> expected;
  expected.reserve(variants.size());
  for (const TSExplainConfig& config : variants) {
    TSExplain engine(*table, config);
    expected.push_back(engine.Run());
  }

  AdmissionOptions admission;
  admission.max_concurrent = 2;
  admission.queue_depth = 2;
  const int capacity = admission.max_concurrent + admission.queue_depth;
  const int clients = capacity * overload_x;
  const int queries_per_client = 12;

  // The storm is repeated until shedding is observed (at >= 2x capacity
  // it virtually always is on the first run; the retry guards against a
  // scheduler fluke serializing every client).
  size_t shed = 0, accepted = 0, mismatches = 0, bad_sheds = 0;
  size_t peak_queued = 0;
  std::vector<double> accepted_latencies;
  for (int attempt = 0; attempt < 3 && shed == 0; ++attempt) {
    ServiceOptions service_options;
    service_options.admission = admission;
    ExplainService service(service_options);
    std::string error;
    if (!service.registry().RegisterTable("synthetic", table, "<synthetic>",
                                          &error)) {
      std::fprintf(stderr, "register failed: %s\n", error.c_str());
      std::exit(1);
    }
    {
      ExplainRequest warm;
      warm.dataset = "synthetic";
      warm.config = variants[0];
      if (!service.Explain(warm).ok) {
        std::fprintf(stderr, "warmup query failed\n");
        std::exit(1);
      }
    }

    shed = accepted = mismatches = bad_sheds = 0;
    accepted_latencies.clear();
    std::atomic<int> start_gate{0};
    std::vector<std::future<std::vector<std::pair<size_t, ExplainResponse>>>>
        futures;
    futures.reserve(static_cast<size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      futures.push_back(std::async(std::launch::async, [&, c] {
        start_gate.fetch_add(1);
        while (start_gate.load() < clients) {
          std::this_thread::yield();  // all clients fire together
        }
        std::vector<std::pair<size_t, ExplainResponse>> collected;
        for (int q = 0; q < queries_per_client; ++q) {
          // Every third query is hot (variant 0); the rest walk the cold
          // variants, staggered per client.
          const size_t v = (q % 3 == 0)
                               ? 0
                               : (static_cast<size_t>(c + q)) % variants.size();
          ExplainRequest request;
          request.dataset = "synthetic";
          request.config = variants[v];
          collected.emplace_back(v, service.Explain(request));
        }
        return collected;
      }));
    }
    for (auto& future : futures) {
      for (const auto& [v, response] : future.get()) {
        if (response.ok) {
          ++accepted;
          accepted_latencies.push_back(response.latency_ms);
          if (!IdenticalResults(*response.result, expected[v])) {
            ++mismatches;
          }
        } else if (response.error_code == error_code::kOverloaded) {
          ++shed;
          if (response.retry_after_ms <= 0.0) ++bad_sheds;
        } else {
          ++bad_sheds;  // only `overloaded` is acceptable under this storm
        }
      }
    }
    peak_queued = service.Stats().admission.peak_queued;
  }

  const size_t total = accepted + shed;
  const double shed_rate =
      total == 0 ? 0.0 : 100.0 * static_cast<double>(shed) /
                             static_cast<double>(total);
  std::printf(
      "overload: %dx capacity (%d clients x %d queries), %zu accepted, "
      "%zu shed (%.1f%%), peak queue %zu (bound %d)\n",
      overload_x, clients, queries_per_client, accepted, shed, shed_rate,
      peak_queued, admission.queue_depth);
  bench::EmitResult("service.overload.shed_rate_pct", shed_rate);
  bench::EmitResult("service.overload.accepted_p50_ms",
                    Percentile(accepted_latencies, 50));
  bench::EmitResult("service.overload.accepted_p99_ms",
                    Percentile(accepted_latencies, 99));

  if (shed == 0) {
    std::fprintf(stderr, "FAIL: no load was shed at %dx capacity\n",
                 overload_x);
    std::exit(1);
  }
  if (bad_sheds != 0) {
    std::fprintf(stderr,
                 "FAIL: %zu responses were neither ok nor a structured "
                 "`overloaded` with retry_after_ms\n",
                 bad_sheds);
    std::exit(1);
  }
  if (mismatches != 0) {
    std::fprintf(stderr,
                 "FAIL: %zu accepted responses differ from their serial "
                 "execution\n",
                 mismatches);
    std::exit(1);
  }
  if (peak_queued > static_cast<size_t>(admission.queue_depth)) {
    std::fprintf(stderr, "FAIL: admission queue exceeded its bound\n");
    std::exit(1);
  }
}

void Run() {
  bench::PrintHeader("Service layer: cold vs cache-hit vs concurrent");

  bench::Workload workload = bench::MakeCovidDailyWorkload();
  TSExplainConfig base_config = workload.config;
  // Cold queries exercise the parallel core end to end (cube build, TopFor
  // pre-warm, distance fill); 0 = auto = hardware concurrency. Threads are
  // not part of the query key and results are thread-count invariant.
  base_config.threads = 0;
  ExplainService service;
  {
    std::string error;
    if (!service.registry().RegisterTable(
            "covid_daily",
            std::shared_ptr<const Table>(std::move(workload.table)),
            "<simulated>", &error)) {
      std::fprintf(stderr, "register failed: %s\n", error.c_str());
      std::exit(1);
    }
  }
  const std::vector<ExplainRequest> mix = MakeQueryMix(base_config);

  // --- Cold: every query key is a first touch --------------------------
  Timer cold_timer;
  for (const ExplainRequest& request : mix) {
    const ExplainResponse response = service.Explain(request);
    if (!response.ok || response.cache_hit) {
      std::fprintf(stderr, "cold query failed: %s\n",
                   response.error.c_str());
      std::exit(1);
    }
  }
  const double cold_ms =
      cold_timer.ElapsedMs() / static_cast<double>(mix.size());
  bench::EmitResult("service.cold.per_query_ms", cold_ms);

  // --- Hot: identical queries served from the result cache -------------
  constexpr int kHotRounds = 200;
  std::vector<double> hot_latencies;
  hot_latencies.reserve(static_cast<size_t>(kHotRounds) * mix.size());
  Timer hot_timer;
  for (int round = 0; round < kHotRounds; ++round) {
    for (const ExplainRequest& request : mix) {
      Timer query_timer;
      const ExplainResponse response = service.Explain(request);
      if (!response.ok || !response.cache_hit) {
        std::fprintf(stderr, "expected a cache hit\n");
        std::exit(1);
      }
      hot_latencies.push_back(query_timer.ElapsedMs());
    }
  }
  const double hot_ms = hot_timer.ElapsedMs() /
                        static_cast<double>(kHotRounds * mix.size());
  const double hot_p50 = Percentile(hot_latencies, 50);
  bench::EmitResult("service.hot.per_query_ms", hot_ms);
  bench::EmitResult("service.hot.p50_ms", hot_p50);
  bench::EmitResult("service.hot.p99_ms", Percentile(hot_latencies, 99));
  bench::EmitResult("service.hot.speedup_x", cold_ms / hot_ms);

  // --- Metrics overhead on the hot path --------------------------------
  // A cache hit performs exactly one Counter::Inc (cache.hits) plus one
  // Histogram::Observe (query.hot_ms). Time that op pair in isolation and
  // bound it against the hot p50: the observability acceptance bar is
  // < 5% added latency with metrics always on (there is no kill switch).
  {
    Counter& probe_count =
        MetricRegistry::Global().GetCounter("bench.metrics_probe_total");
    Histogram& probe_ms =
        MetricRegistry::Global().GetHistogram("bench.metrics_probe_ms");
    constexpr int kProbeOps = 1'000'000;
    Timer probe_timer;
    for (int i = 0; i < kProbeOps; ++i) {
      probe_count.Inc();
      probe_ms.Observe(0.042);
    }
    const double per_hit_cost_ms =
        probe_timer.ElapsedMs() / static_cast<double>(kProbeOps);
    const double overhead_pct =
        hot_p50 > 0.0 ? per_hit_cost_ms / hot_p50 * 100.0 : 0.0;
    std::printf(
        "metrics hot-path cost: %.1f ns per hit (Inc + Observe), %.3f%% "
        "of hot p50\n",
        per_hit_cost_ms * 1e6, overhead_pct);
    bench::EmitResult("service.metrics.per_hit_cost_us",
                      per_hit_cost_ms * 1e3);
    bench::EmitResult("service.metrics.overhead_pct", overhead_pct);
    if (overhead_pct >= 5.0) {
      std::fprintf(stderr,
                   "FAIL: metrics overhead %.2f%% of hot p50 breaches the "
                   "5%% observability bar\n",
                   overhead_pct);
      std::exit(1);
    }
  }

  // --- Metrics-history sampling overhead -------------------------------
  // The serve binary runs a background sampler snapshotting the whole
  // registry into ring buffers (default interval 100 ms in this gate,
  // 1 s in production). Amortized over any query mix, sampling steals
  // per-tick-cost / interval of one core — so that duty cycle IS the
  // sampled fraction of hot-path time, independent of query duration.
  // Bar: < 1% of hot-path p50, i.e. duty cycle < 1%.
  {
    MetricsHistory::Options history_options;
    history_options.interval_ms = 100;
    history_options.capacity = 600;
    MetricsHistory history(MetricRegistry::Global(), history_options);
    history.TrackHistogramPercentiles("query.hot_ms");
    history.TrackHistogramPercentiles("query.cold_ms");
    history.SampleNow();  // warmup tick: ring allocation + discovery
    constexpr int kTicks = 2000;
    Timer tick_timer;
    for (int i = 0; i < kTicks; ++i) history.SampleNow();
    const double per_tick_ms =
        tick_timer.ElapsedMs() / static_cast<double>(kTicks);
    const double duty_pct =
        per_tick_ms / static_cast<double>(history_options.interval_ms) *
        100.0;

    // Re-measure the hot path with the sampler actually running at the
    // gated interval (informational: wall-clock noise dwarfs a sub-1%
    // effect, so the deterministic duty cycle above is what gates).
    history.Start();
    std::vector<double> sampled_latencies;
    sampled_latencies.reserve(static_cast<size_t>(kHotRounds) * mix.size());
    for (int round = 0; round < kHotRounds; ++round) {
      for (const ExplainRequest& request : mix) {
        Timer query_timer;
        const ExplainResponse response = service.Explain(request);
        if (!response.ok || !response.cache_hit) {
          std::fprintf(stderr, "expected a cache hit under sampling\n");
          std::exit(1);
        }
        sampled_latencies.push_back(query_timer.ElapsedMs());
      }
    }
    history.Stop();

    std::printf(
        "history sampling: %.1f us/tick over %zu metrics, %.4f%% duty "
        "cycle at %d ms; hot p50 %.4f ms bare vs %.4f ms sampled\n",
        per_tick_ms * 1e3, MetricRegistry::Global().NumMetrics(), duty_pct,
        static_cast<int>(history_options.interval_ms), hot_p50,
        Percentile(sampled_latencies, 50));
    bench::EmitResult("service.history.per_tick_us", per_tick_ms * 1e3);
    bench::EmitResult("service.history.overhead_pct", duty_pct);
    bench::EmitResult("service.hot.sampled_p50_ms",
                      Percentile(sampled_latencies, 50));
    if (duty_pct >= 1.0) {
      std::fprintf(stderr,
                   "FAIL: history sampling duty cycle %.3f%% breaches the "
                   "1%% self-observation bar\n",
                   duty_pct);
      std::exit(1);
    }
  }

  // --- Concurrent: 8 clients, mixed hot + cold (fresh service) ---------
  ExplainService concurrent_service;
  {
    bench::Workload w = bench::MakeCovidDailyWorkload();
    std::string error;
    concurrent_service.registry().RegisterTable(
        "covid_daily", std::shared_ptr<const Table>(std::move(w.table)),
        "<simulated>", &error);
  }
  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 50;
  Timer concurrent_timer;
  std::vector<std::future<void>> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(std::async(std::launch::async, [&, c] {
      for (int q = 0; q < kQueriesPerClient; ++q) {
        const ExplainResponse response = concurrent_service.Explain(
            mix[static_cast<size_t>(c + q) % mix.size()]);
        if (!response.ok) {
          std::fprintf(stderr, "concurrent query failed: %s\n",
                       response.error.c_str());
          std::exit(1);
        }
      }
    }));
  }
  for (std::future<void>& client : clients) client.wait();
  const double concurrent_ms =
      concurrent_timer.ElapsedMs() /
      static_cast<double>(kClients * kQueriesPerClient);
  bench::EmitResult("service.concurrent.per_query_ms", concurrent_ms);

  const ServiceStats stats = concurrent_service.Stats();
  std::printf(
      "\ncold %.3f ms/query, hot %.3f ms/query (%.0fx), concurrent "
      "%.4f ms/query\n",
      cold_ms, hot_ms, cold_ms / hot_ms, concurrent_ms);
  std::printf(
      "concurrent cache: %zu misses, %zu hits, %zu coalesced over %d "
      "queries (%zu hot engines)\n",
      stats.cache.misses, stats.cache.hits, stats.cache.coalesced,
      kClients * kQueriesPerClient, stats.hot_engines);
  if (cold_ms / hot_ms < 10.0) {
    std::fprintf(stderr,
                 "FAIL: cache-hit speedup %.1fx below the 10x bar\n",
                 cold_ms / hot_ms);
    std::exit(1);
  }

  RunOverload();

  // Archive the final registry state next to the timings (the `metrics`
  // object in BENCH_*.json): cache/admission counters and latency
  // histograms accumulated across every scenario above.
  bench::EmitMetricsSnapshot();
}

}  // namespace
}  // namespace tsexplain

int main() {
  tsexplain::Run();
  return 0;
}
