// Service-layer throughput: what the explanation service buys over the
// one-cold-query-per-process CLI workflow.
//
// Three measurements on the covid-daily workload (plus k-variants that
// share one hot engine):
//   service.cold.per_query_ms   — first-touch queries: engine build + full
//                                 pipeline run per distinct query key
//   service.hot.per_query_ms    — the same queries again: pure cache hits
//   service.concurrent.per_query_ms
//                               — 8 client threads, mixed hot/cold traffic
//                                 against a fresh service
//   service.hot.speedup_x       — cold / hot per-query time; the ISSUE
//                                 acceptance bar is >= 10x
//
// Emits BENCH_RESULT lines for tools/run_benches.sh (values in ms except
// the explicitly-suffixed speedup ratio).

#include <cstdio>
#include <future>
#include <memory>
#include <vector>

#include "bench_util.h"
#include "src/common/timer.h"
#include "src/service/explain_service.h"

namespace tsexplain {
namespace {

std::vector<ExplainRequest> MakeQueryMix(const TSExplainConfig& base) {
  // Distinct query keys: k variants (one shared engine) + m / smoothing
  // variants (their own engines). Mirrors an analyst sweeping parameters.
  std::vector<ExplainRequest> requests;
  for (int k : {0, 3, 4, 5, 6}) {
    ExplainRequest request;
    request.dataset = "covid_daily";
    request.config = base;
    request.config.fixed_k = k;
    requests.push_back(request);
  }
  for (int m : {1, 5}) {
    ExplainRequest request;
    request.dataset = "covid_daily";
    request.config = base;
    request.config.m = m;
    requests.push_back(request);
  }
  ExplainRequest unsmoothed;
  unsmoothed.dataset = "covid_daily";
  unsmoothed.config = base;
  unsmoothed.config.smooth_window = 1;  // base smooths with window 7
  requests.push_back(unsmoothed);
  return requests;
}

void Run() {
  bench::PrintHeader("Service layer: cold vs cache-hit vs concurrent");

  bench::Workload workload = bench::MakeCovidDailyWorkload();
  TSExplainConfig base_config = workload.config;
  // Cold queries exercise the parallel core end to end (cube build, TopFor
  // pre-warm, distance fill); 0 = auto = hardware concurrency. Threads are
  // not part of the query key and results are thread-count invariant.
  base_config.threads = 0;
  ExplainService service;
  {
    std::string error;
    if (!service.registry().RegisterTable(
            "covid_daily",
            std::shared_ptr<const Table>(std::move(workload.table)),
            "<simulated>", &error)) {
      std::fprintf(stderr, "register failed: %s\n", error.c_str());
      std::exit(1);
    }
  }
  const std::vector<ExplainRequest> mix = MakeQueryMix(base_config);

  // --- Cold: every query key is a first touch --------------------------
  Timer cold_timer;
  for (const ExplainRequest& request : mix) {
    const ExplainResponse response = service.Explain(request);
    if (!response.ok || response.cache_hit) {
      std::fprintf(stderr, "cold query failed: %s\n",
                   response.error.c_str());
      std::exit(1);
    }
  }
  const double cold_ms =
      cold_timer.ElapsedMs() / static_cast<double>(mix.size());
  bench::EmitResult("service.cold.per_query_ms", cold_ms);

  // --- Hot: identical queries served from the result cache -------------
  constexpr int kHotRounds = 200;
  Timer hot_timer;
  for (int round = 0; round < kHotRounds; ++round) {
    for (const ExplainRequest& request : mix) {
      const ExplainResponse response = service.Explain(request);
      if (!response.ok || !response.cache_hit) {
        std::fprintf(stderr, "expected a cache hit\n");
        std::exit(1);
      }
    }
  }
  const double hot_ms = hot_timer.ElapsedMs() /
                        static_cast<double>(kHotRounds * mix.size());
  bench::EmitResult("service.hot.per_query_ms", hot_ms);
  bench::EmitResult("service.hot.speedup_x", cold_ms / hot_ms);

  // --- Concurrent: 8 clients, mixed hot + cold (fresh service) ---------
  ExplainService concurrent_service;
  {
    bench::Workload w = bench::MakeCovidDailyWorkload();
    std::string error;
    concurrent_service.registry().RegisterTable(
        "covid_daily", std::shared_ptr<const Table>(std::move(w.table)),
        "<simulated>", &error);
  }
  constexpr int kClients = 8;
  constexpr int kQueriesPerClient = 50;
  Timer concurrent_timer;
  std::vector<std::future<void>> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.push_back(std::async(std::launch::async, [&, c] {
      for (int q = 0; q < kQueriesPerClient; ++q) {
        const ExplainResponse response = concurrent_service.Explain(
            mix[static_cast<size_t>(c + q) % mix.size()]);
        if (!response.ok) {
          std::fprintf(stderr, "concurrent query failed: %s\n",
                       response.error.c_str());
          std::exit(1);
        }
      }
    }));
  }
  for (std::future<void>& client : clients) client.wait();
  const double concurrent_ms =
      concurrent_timer.ElapsedMs() /
      static_cast<double>(kClients * kQueriesPerClient);
  bench::EmitResult("service.concurrent.per_query_ms", concurrent_ms);

  const ServiceStats stats = concurrent_service.Stats();
  std::printf(
      "\ncold %.3f ms/query, hot %.3f ms/query (%.0fx), concurrent "
      "%.4f ms/query\n",
      cold_ms, hot_ms, cold_ms / hot_ms, concurrent_ms);
  std::printf(
      "concurrent cache: %zu misses, %zu hits, %zu coalesced over %d "
      "queries (%zu hot engines)\n",
      stats.cache.misses, stats.cache.hits, stats.cache.coalesced,
      kClients * kQueriesPerClient, stats.hot_engines);
  if (cold_ms / hot_ms < 10.0) {
    std::fprintf(stderr,
                 "FAIL: cache-hit speedup %.1fx below the 10x bar\n",
                 cold_ms / hot_ms);
    std::exit(1);
  }
}

}  // namespace
}  // namespace tsexplain

int main() {
  tsexplain::Run();
  return 0;
}
