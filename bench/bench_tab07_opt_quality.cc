// Reproduces paper Table 7: result quality of the optimization strategies.
// The sketch and filter approximate; guess-and-verify is exact. The paper
// reports the total variance of O1+O2 within <1% of Vanilla with nearly
// identical cut points (<= 4 days apart on Covid).

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "src/common/timer.h"

namespace tsexplain {
namespace {

// Max distance from each optimized cut to the nearest vanilla cut.
int MaxCutShift(const std::vector<int>& optimized,
                const std::vector<int>& vanilla) {
  int worst = 0;
  for (int cut : optimized) {
    int best = 1 << 30;
    for (int v : vanilla) best = std::min(best, std::abs(cut - v));
    worst = std::max(worst, best);
  }
  return worst;
}

void Run() {
  bench::PrintHeader("Table 7: quality of optimization strategies");
  Timer timer;
  std::printf("\n  %-26s %16s %16s %10s %9s\n", "dataset",
              "Variance(Vanilla)", "Variance(O1+O2)", "rel.diff", "cutShift");

  bool all_close = true;
  for (bench::Workload& w : bench::AllWorkloads()) {
    TSExplainConfig vanilla_config = w.config;
    bench::ApplyPreset(bench::OptPreset::kVanilla, &vanilla_config);
    TSExplain vanilla_engine(*w.table, vanilla_config);
    const TSExplainResult vanilla = vanilla_engine.Run();

    TSExplainConfig opt_config = w.config;
    bench::ApplyPreset(bench::OptPreset::kO1O2, &opt_config);
    // Same K as vanilla chose, so the variances are comparable rows.
    opt_config.fixed_k = vanilla.chosen_k;
    TSExplain opt_engine(*w.table, opt_config);
    const TSExplainResult optimized = opt_engine.Run();

    // Evaluate the optimized scheme under the VANILLA engine at unit-object
    // granularity (identical metric semantics).
    const double vanilla_var = vanilla.segmentation.total_variance;
    const double opt_var =
        vanilla_engine.EvaluateScheme(optimized.segmentation.cuts);
    const double rel =
        vanilla_var > 0 ? (opt_var - vanilla_var) / vanilla_var : 0.0;
    const int shift = MaxCutShift(optimized.segmentation.cuts,
                                  vanilla.segmentation.cuts);
    std::printf("  %-26s %16.3f %16.3f %9.2f%% %8dpt\n", w.name.c_str(),
                vanilla_var, opt_var, rel * 100.0, shift);
    if (rel > 0.10) all_close = false;
  }
  std::printf("\n  shape check -- optimized variance within 10%% of Vanilla "
              "everywhere (paper: <1%%): %s\n",
              all_close ? "PASS" : "FAIL");
  std::printf("  total time: %s\n",
              bench::FormatMs(timer.ElapsedMs()).c_str());
  bench::EmitResult("tab07.opt_quality.total", timer.ElapsedMs());
}

}  // namespace
}  // namespace tsexplain

int main() {
  tsexplain::Run();
  return 0;
}
