// Micro/ablation benchmarks (google-benchmark) for the design choices
// DESIGN.md calls out: Cascading Analysts cost vs epsilon, guess-and-verify
// initial guess, variance-table granularity (vanilla vs sketch), diff-score
// lookups, matrix profile, and the K-segmentation DP.
//
// After the benchmark suite, main() runs the SIMD acceptance gate: on
// hosts where the AVX2 kernels dispatch, the vectorized ScoreAll sweep
// must be bit-identical to the scalar reference AND at least 1.5x faster,
// or the process exits non-zero (docs/PERF.md "SIMD scoring"). Emits
//   micro.score_all.scalar   median scalar sweep wall clock
//   micro.score_all.simd     median AVX2 sweep wall clock
// as BENCH_RESULT lines for tools/run_benches.sh.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <numeric>
#include <vector>

#include "bench_util.h"
#include "src/baselines/matrix_profile.h"
#include "src/common/rng.h"
#include "src/common/timer.h"
#include "src/cube/score_kernels.h"
#include "src/datagen/liquor_sim.h"
#include "src/datagen/synthetic.h"
#include "src/diff/guess_verify.h"
#include "src/seg/kseg_dp.h"
#include "src/seg/sketch.h"

namespace tsexplain {
namespace {

// Fixture data for CA benchmarks: a two-attribute lattice with the given
// per-attribute cardinality.
struct CaFixture {
  std::unique_ptr<Table> table;
  ExplanationRegistry registry;
  std::vector<double> gamma;

  explicit CaFixture(int cardinality) {
    table = std::make_unique<Table>(Schema("t", {"A", "B"}, {"m"}));
    table->AddTimeBucket("0");
    for (int a = 0; a < cardinality; ++a) {
      for (int b = 0; b < cardinality; ++b) {
        table->AppendRow(0,
                         {"a" + std::to_string(a), "b" + std::to_string(b)},
                         {1.0});
      }
    }
    registry = ExplanationRegistry::Build(*table, {0, 1}, 2);
    Rng rng(7);
    gamma.resize(registry.num_explanations());
    for (auto& g : gamma) g = rng.Uniform(0.0, 100.0);
  }
};

void BM_CascadingAnalysts(benchmark::State& state) {
  CaFixture fixture(static_cast<int>(state.range(0)));
  CascadingAnalysts solver(fixture.registry);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.TopM(fixture.gamma, 3));
  }
  state.counters["epsilon"] =
      static_cast<double>(fixture.registry.num_explanations());
}
BENCHMARK(BM_CascadingAnalysts)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_GuessVerify(benchmark::State& state) {
  CaFixture fixture(40);  // epsilon = 40 + 40 + 1600
  CascadingAnalysts solver(fixture.registry);
  const int initial_guess = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GuessVerifyTopM(solver, fixture.gamma, 3, nullptr, initial_guess));
  }
}
BENCHMARK(BM_GuessVerify)->Arg(5)->Arg(30)->Arg(120);

void BM_PlainCaSameInstance(benchmark::State& state) {
  CaFixture fixture(40);
  CascadingAnalysts solver(fixture.registry);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.TopM(fixture.gamma, 3));
  }
}
BENCHMARK(BM_PlainCaSameInstance);

// Variance-table construction: the module (c) bottleneck, vanilla vs the
// sketched candidate set.
struct SegFixture {
  SyntheticDataset ds;
  ExplanationRegistry registry;
  std::unique_ptr<ExplanationCube> cube;
  std::unique_ptr<SegmentExplainer> explainer;

  explicit SegFixture(int n) {
    SyntheticConfig config;
    config.length = n;
    config.snr_db = 35.0;
    config.seed = 42;
    config.num_interior_cuts = 4;
    ds = GenerateSynthetic(config);
    registry = ExplanationRegistry::Build(*ds.table, {0}, 1);
    cube = std::make_unique<ExplanationCube>(*ds.table, registry,
                                             AggregateFunction::kSum, 0);
    SegmentExplainer::Options options;
    options.m = 3;
    explainer = std::make_unique<SegmentExplainer>(*cube, registry, options);
  }
};

void BM_VarianceTableVanilla(benchmark::State& state) {
  SegFixture fixture(static_cast<int>(state.range(0)));
  VarianceCalculator calc(*fixture.explainer, VarianceMetric::kTse);
  std::vector<int> positions(static_cast<size_t>(fixture.explainer->n()));
  std::iota(positions.begin(), positions.end(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(VarianceTable::Compute(calc, positions));
  }
}
BENCHMARK(BM_VarianceTableVanilla)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_VarianceTableSketched(benchmark::State& state) {
  SegFixture fixture(static_cast<int>(state.range(0)));
  VarianceCalculator calc(*fixture.explainer, VarianceMetric::kTse);
  const SketchResult sketch = SelectSketch(calc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        VarianceTable::Compute(calc, sketch.positions));
  }
  state.counters["sketch_size"] =
      static_cast<double>(sketch.positions.size());
}
BENCHMARK(BM_VarianceTableSketched)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_KsegDp(benchmark::State& state) {
  SegFixture fixture(static_cast<int>(state.range(0)));
  VarianceCalculator calc(*fixture.explainer, VarianceMetric::kTse);
  std::vector<int> positions(static_cast<size_t>(fixture.explainer->n()));
  std::iota(positions.begin(), positions.end(), 0);
  const VarianceTable table = VarianceTable::Compute(calc, positions);
  for (auto _ : state) {
    KSegmentationDp dp(table, 20);
    benchmark::DoNotOptimize(dp.TotalVariance(20));
  }
}
BENCHMARK(BM_KsegDp)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_CubeScoreLookup(benchmark::State& state) {
  SegFixture fixture(200);
  size_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.cube->Score(
        DiffMetricKind::kAbsoluteChange, 0, t % 100, 100 + t % 99));
    ++t;
  }
}
BENCHMARK(BM_CubeScoreLookup);

// Module (a) for one segment on the Liquor cube (the large-epsilon
// workload): the legacy per-candidate Score loop vs the batched SoA sweep
// (ExplanationCube::ScoreAll). Same arithmetic, same results; the batch
// hoists the overall finalization and walks contiguous memory.
struct LiquorCubeFixture {
  std::unique_ptr<Table> table;
  ExplanationRegistry registry;
  std::unique_ptr<ExplanationCube> cube;

  LiquorCubeFixture() : table(MakeLiquorTable()) {
    registry = ExplanationRegistry::Build(*table, {0, 1, 2, 3}, 3);
    cube = std::make_unique<ExplanationCube>(*table, registry,
                                             AggregateFunction::kSum, 0);
  }
};

void BM_ScorePerCandidate(benchmark::State& state) {
  LiquorCubeFixture fixture;
  const size_t epsilon = fixture.registry.num_explanations();
  const size_t n = fixture.cube->n();
  std::vector<double> gammas(epsilon);
  size_t t = 0;
  for (auto _ : state) {
    const size_t a = t % (n / 2);
    const size_t b = n / 2 + t % (n / 2);
    for (size_t e = 0; e < epsilon; ++e) {
      gammas[e] = fixture.cube
                      ->Score(DiffMetricKind::kAbsoluteChange,
                              static_cast<ExplId>(e), a, b)
                      .gamma;
    }
    benchmark::DoNotOptimize(gammas.data());
    ++t;
  }
  state.counters["epsilon"] = static_cast<double>(epsilon);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(epsilon));
}
BENCHMARK(BM_ScorePerCandidate)->Unit(benchmark::kMicrosecond);

void BM_ScoreAllBatch(benchmark::State& state) {
  LiquorCubeFixture fixture;
  const size_t epsilon = fixture.registry.num_explanations();
  const size_t n = fixture.cube->n();
  std::vector<double> gammas(epsilon);
  size_t t = 0;
  for (auto _ : state) {
    fixture.cube->ScoreAll(DiffMetricKind::kAbsoluteChange, t % (n / 2),
                           n / 2 + t % (n / 2), nullptr, &gammas);
    benchmark::DoNotOptimize(gammas.data());
    ++t;
  }
  state.counters["epsilon"] = static_cast<double>(epsilon);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(epsilon));
}
BENCHMARK(BM_ScoreAllBatch)->Unit(benchmark::kMicrosecond);

// Raw kernel-level sweep (no cube, no mask): the four SoA candidate
// streams fed straight into the scoring kernels, the unit the SIMD gate
// below times. kAvg + kRelativeChange is the heaviest lane (two guarded
// divisions + the count>0 finalize blend).
struct KernelFixture {
  std::vector<double> test_sums, test_counts, control_sums, control_counts;
  ScoreAllInputs in;

  explicit KernelFixture(size_t epsilon) {
    test_sums.resize(epsilon);
    test_counts.resize(epsilon);
    control_sums.resize(epsilon);
    control_counts.resize(epsilon);
    Rng rng(11);
    for (size_t e = 0; e < epsilon; ++e) {
      test_sums[e] = rng.Uniform(-100.0, 100.0);
      test_counts[e] = static_cast<double>(static_cast<int>(
          rng.Uniform(0.0, 9.0)));
      control_sums[e] = rng.Uniform(-100.0, 100.0);
      control_counts[e] = static_cast<double>(static_cast<int>(
          rng.Uniform(0.0, 9.0)));
    }
    in.f = AggregateFunction::kAvg;
    in.kind = DiffMetricKind::kRelativeChange;
    in.overall_test = AggState{5000.0, 1000.0};
    in.overall_control = AggState{4000.0, 900.0};
    in.f_test = in.overall_test.Finalize(in.f);
    in.f_control = in.overall_control.Finalize(in.f);
    in.test_sums = test_sums.data();
    in.test_counts = test_counts.data();
    in.control_sums = control_sums.data();
    in.control_counts = control_counts.data();
    in.epsilon = epsilon;
  }
};

void BM_ScoreAllScalarKernel(benchmark::State& state) {
  KernelFixture fixture(static_cast<size_t>(state.range(0)));
  std::vector<double> out(fixture.in.epsilon);
  for (auto _ : state) {
    ScoreAllScalar(fixture.in, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ScoreAllScalarKernel)->Arg(1 << 16)
    ->Unit(benchmark::kMicrosecond);

void BM_ScoreAllSimd(benchmark::State& state) {
  KernelFixture fixture(static_cast<size_t>(state.range(0)));
  std::vector<double> out(fixture.in.epsilon);
  if (!ScoreAllAvx2(fixture.in, out.data())) {
    state.SkipWithError("AVX2 unavailable (CPU or TSEXPLAIN_SIMD=OFF)");
    return;
  }
  for (auto _ : state) {
    ScoreAllAvx2(fixture.in, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_ScoreAllSimd)->Arg(1 << 16)->Unit(benchmark::kMicrosecond);

// Cube construction, serial vs the time-partitioned parallel scan (arg =
// thread count). Results are bit-identical at any thread count.
void BM_CubeBuildThreads(benchmark::State& state) {
  const auto table = MakeLiquorTable();
  const auto registry = ExplanationRegistry::Build(*table, {0, 1, 2, 3}, 3);
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ExplanationCube cube(*table, registry, AggregateFunction::kSum, 0,
                         threads);
    benchmark::DoNotOptimize(&cube);
  }
  state.counters["rows"] = static_cast<double>(table->num_rows());
}
BENCHMARK(BM_CubeBuildThreads)->Arg(1)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_MatrixProfile(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> values(static_cast<size_t>(state.range(0)));
  double level = 0.0;
  for (auto& v : values) {
    level += rng.Gaussian(0.0, 1.0);
    v = level;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeMatrixProfile(values, 12));
  }
}
BENCHMARK(BM_MatrixProfile)->Arg(345)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_LiquorCubeBuild(benchmark::State& state) {
  const auto table = MakeLiquorTable();
  std::vector<AttrId> attrs{0, 1, 2, 3};
  for (auto _ : state) {
    const auto registry = ExplanationRegistry::Build(*table, attrs, 3);
    benchmark::DoNotOptimize(
        ExplanationCube(*table, registry, AggregateFunction::kSum, 0));
  }
}
BENCHMARK(BM_LiquorCubeBuild)->Unit(benchmark::kMillisecond);

// SIMD acceptance gate (ISSUE 8): where AVX2 dispatches, the vectorized
// sweep must reproduce the scalar reference bit for bit and beat it by at
// least 1.5x. Runs after the benchmark suite so a regression fails the
// process, not just a number in a log. Returns 0 (with a note) when the
// host or build has no AVX2 — the scalar-dispatch CI job must still pass.
int RunSimdGate() {
  constexpr size_t kEpsilon = 1 << 16;
  constexpr int kReps = 41;
  KernelFixture fixture(kEpsilon);
  std::vector<double> scalar(kEpsilon), vectorized(kEpsilon);
  if (!ScoreAllAvx2(fixture.in, vectorized.data())) {
    std::printf("simd gate: skipped (AVX2 unavailable: CPU, non-x86, or "
                "TSEXPLAIN_SIMD=OFF)\n");
    return 0;
  }

  // Bit identity first, across every aggregate x metric pair — a fast
  // wrong kernel must not pass the speed gate.
  for (AggregateFunction f : {AggregateFunction::kSum,
                              AggregateFunction::kCount,
                              AggregateFunction::kAvg}) {
    for (DiffMetricKind kind : {DiffMetricKind::kAbsoluteChange,
                                DiffMetricKind::kRelativeChange,
                                DiffMetricKind::kRiskRatio}) {
      ScoreAllInputs in = fixture.in;
      in.f = f;
      in.kind = kind;
      in.f_test = in.overall_test.Finalize(f);
      in.f_control = in.overall_control.Finalize(f);
      ScoreAllScalar(in, scalar.data());
      ScoreAllAvx2(in, vectorized.data());
      if (std::memcmp(scalar.data(), vectorized.data(),
                      kEpsilon * sizeof(double)) != 0) {
        std::fprintf(stderr,
                     "FAIL: AVX2 sweep is not bit-identical to scalar "
                     "(f=%d kind=%d)\n",
                     static_cast<int>(f), static_cast<int>(kind));
        return 1;
      }
    }
  }

  auto median_ms = [&](void (*sweep)(const ScoreAllInputs&, double*),
                       double* out) {
    std::vector<double> samples;
    samples.reserve(kReps);
    for (int rep = 0; rep < kReps; ++rep) {
      Timer timer;
      sweep(fixture.in, out);
      samples.push_back(timer.ElapsedMs());
    }
    std::sort(samples.begin(), samples.end());
    return samples[samples.size() / 2];
  };
  const double scalar_ms = median_ms(
      +[](const ScoreAllInputs& in, double* out) { ScoreAllScalar(in, out); },
      scalar.data());
  const double simd_ms = median_ms(
      +[](const ScoreAllInputs& in, double* out) { ScoreAllAvx2(in, out); },
      vectorized.data());
  const double speedup = scalar_ms / simd_ms;
  std::printf("simd gate: scalar %s, avx2 %s, speedup %.2fx "
              "(epsilon=%zu, bit-identical)\n",
              bench::FormatMs(scalar_ms).c_str(),
              bench::FormatMs(simd_ms).c_str(), speedup, kEpsilon);
  bench::EmitResult("micro.score_all.scalar", scalar_ms);
  bench::EmitResult("micro.score_all.simd", simd_ms);
  if (speedup < 1.5) {
    std::fprintf(stderr, "FAIL: SIMD speedup %.2fx is below the 1.5x bar\n",
                 speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tsexplain

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return tsexplain::RunSimdGate();
}
