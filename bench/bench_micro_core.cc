// Micro/ablation benchmarks (google-benchmark) for the design choices
// DESIGN.md calls out: Cascading Analysts cost vs epsilon, guess-and-verify
// initial guess, variance-table granularity (vanilla vs sketch), diff-score
// lookups, matrix profile, and the K-segmentation DP.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <numeric>

#include "bench_util.h"
#include "src/baselines/matrix_profile.h"
#include "src/common/rng.h"
#include "src/datagen/liquor_sim.h"
#include "src/datagen/synthetic.h"
#include "src/diff/guess_verify.h"
#include "src/seg/kseg_dp.h"
#include "src/seg/sketch.h"

namespace tsexplain {
namespace {

// Fixture data for CA benchmarks: a two-attribute lattice with the given
// per-attribute cardinality.
struct CaFixture {
  std::unique_ptr<Table> table;
  ExplanationRegistry registry;
  std::vector<double> gamma;

  explicit CaFixture(int cardinality) {
    table = std::make_unique<Table>(Schema("t", {"A", "B"}, {"m"}));
    table->AddTimeBucket("0");
    for (int a = 0; a < cardinality; ++a) {
      for (int b = 0; b < cardinality; ++b) {
        table->AppendRow(0,
                         {"a" + std::to_string(a), "b" + std::to_string(b)},
                         {1.0});
      }
    }
    registry = ExplanationRegistry::Build(*table, {0, 1}, 2);
    Rng rng(7);
    gamma.resize(registry.num_explanations());
    for (auto& g : gamma) g = rng.Uniform(0.0, 100.0);
  }
};

void BM_CascadingAnalysts(benchmark::State& state) {
  CaFixture fixture(static_cast<int>(state.range(0)));
  CascadingAnalysts solver(fixture.registry);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.TopM(fixture.gamma, 3));
  }
  state.counters["epsilon"] =
      static_cast<double>(fixture.registry.num_explanations());
}
BENCHMARK(BM_CascadingAnalysts)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_GuessVerify(benchmark::State& state) {
  CaFixture fixture(40);  // epsilon = 40 + 40 + 1600
  CascadingAnalysts solver(fixture.registry);
  const int initial_guess = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GuessVerifyTopM(solver, fixture.gamma, 3, nullptr, initial_guess));
  }
}
BENCHMARK(BM_GuessVerify)->Arg(5)->Arg(30)->Arg(120);

void BM_PlainCaSameInstance(benchmark::State& state) {
  CaFixture fixture(40);
  CascadingAnalysts solver(fixture.registry);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.TopM(fixture.gamma, 3));
  }
}
BENCHMARK(BM_PlainCaSameInstance);

// Variance-table construction: the module (c) bottleneck, vanilla vs the
// sketched candidate set.
struct SegFixture {
  SyntheticDataset ds;
  ExplanationRegistry registry;
  std::unique_ptr<ExplanationCube> cube;
  std::unique_ptr<SegmentExplainer> explainer;

  explicit SegFixture(int n) {
    SyntheticConfig config;
    config.length = n;
    config.snr_db = 35.0;
    config.seed = 42;
    config.num_interior_cuts = 4;
    ds = GenerateSynthetic(config);
    registry = ExplanationRegistry::Build(*ds.table, {0}, 1);
    cube = std::make_unique<ExplanationCube>(*ds.table, registry,
                                             AggregateFunction::kSum, 0);
    SegmentExplainer::Options options;
    options.m = 3;
    explainer = std::make_unique<SegmentExplainer>(*cube, registry, options);
  }
};

void BM_VarianceTableVanilla(benchmark::State& state) {
  SegFixture fixture(static_cast<int>(state.range(0)));
  VarianceCalculator calc(*fixture.explainer, VarianceMetric::kTse);
  std::vector<int> positions(static_cast<size_t>(fixture.explainer->n()));
  std::iota(positions.begin(), positions.end(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(VarianceTable::Compute(calc, positions));
  }
}
BENCHMARK(BM_VarianceTableVanilla)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_VarianceTableSketched(benchmark::State& state) {
  SegFixture fixture(static_cast<int>(state.range(0)));
  VarianceCalculator calc(*fixture.explainer, VarianceMetric::kTse);
  const SketchResult sketch = SelectSketch(calc);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        VarianceTable::Compute(calc, sketch.positions));
  }
  state.counters["sketch_size"] =
      static_cast<double>(sketch.positions.size());
}
BENCHMARK(BM_VarianceTableSketched)->Arg(100)->Arg(200)->Arg(400)
    ->Unit(benchmark::kMillisecond);

void BM_KsegDp(benchmark::State& state) {
  SegFixture fixture(static_cast<int>(state.range(0)));
  VarianceCalculator calc(*fixture.explainer, VarianceMetric::kTse);
  std::vector<int> positions(static_cast<size_t>(fixture.explainer->n()));
  std::iota(positions.begin(), positions.end(), 0);
  const VarianceTable table = VarianceTable::Compute(calc, positions);
  for (auto _ : state) {
    KSegmentationDp dp(table, 20);
    benchmark::DoNotOptimize(dp.TotalVariance(20));
  }
}
BENCHMARK(BM_KsegDp)->Arg(100)->Arg(400)->Unit(benchmark::kMillisecond);

void BM_CubeScoreLookup(benchmark::State& state) {
  SegFixture fixture(200);
  size_t t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture.cube->Score(
        DiffMetricKind::kAbsoluteChange, 0, t % 100, 100 + t % 99));
    ++t;
  }
}
BENCHMARK(BM_CubeScoreLookup);

// Module (a) for one segment on the Liquor cube (the large-epsilon
// workload): the legacy per-candidate Score loop vs the batched SoA sweep
// (ExplanationCube::ScoreAll). Same arithmetic, same results; the batch
// hoists the overall finalization and walks contiguous memory.
struct LiquorCubeFixture {
  std::unique_ptr<Table> table;
  ExplanationRegistry registry;
  std::unique_ptr<ExplanationCube> cube;

  LiquorCubeFixture() : table(MakeLiquorTable()) {
    registry = ExplanationRegistry::Build(*table, {0, 1, 2, 3}, 3);
    cube = std::make_unique<ExplanationCube>(*table, registry,
                                             AggregateFunction::kSum, 0);
  }
};

void BM_ScorePerCandidate(benchmark::State& state) {
  LiquorCubeFixture fixture;
  const size_t epsilon = fixture.registry.num_explanations();
  const size_t n = fixture.cube->n();
  std::vector<double> gammas(epsilon);
  size_t t = 0;
  for (auto _ : state) {
    const size_t a = t % (n / 2);
    const size_t b = n / 2 + t % (n / 2);
    for (size_t e = 0; e < epsilon; ++e) {
      gammas[e] = fixture.cube
                      ->Score(DiffMetricKind::kAbsoluteChange,
                              static_cast<ExplId>(e), a, b)
                      .gamma;
    }
    benchmark::DoNotOptimize(gammas.data());
    ++t;
  }
  state.counters["epsilon"] = static_cast<double>(epsilon);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(epsilon));
}
BENCHMARK(BM_ScorePerCandidate)->Unit(benchmark::kMicrosecond);

void BM_ScoreAllBatch(benchmark::State& state) {
  LiquorCubeFixture fixture;
  const size_t epsilon = fixture.registry.num_explanations();
  const size_t n = fixture.cube->n();
  std::vector<double> gammas(epsilon);
  size_t t = 0;
  for (auto _ : state) {
    fixture.cube->ScoreAll(DiffMetricKind::kAbsoluteChange, t % (n / 2),
                           n / 2 + t % (n / 2), nullptr, &gammas);
    benchmark::DoNotOptimize(gammas.data());
    ++t;
  }
  state.counters["epsilon"] = static_cast<double>(epsilon);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(epsilon));
}
BENCHMARK(BM_ScoreAllBatch)->Unit(benchmark::kMicrosecond);

// Cube construction, serial vs the time-partitioned parallel scan (arg =
// thread count). Results are bit-identical at any thread count.
void BM_CubeBuildThreads(benchmark::State& state) {
  const auto table = MakeLiquorTable();
  const auto registry = ExplanationRegistry::Build(*table, {0, 1, 2, 3}, 3);
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ExplanationCube cube(*table, registry, AggregateFunction::kSum, 0,
                         threads);
    benchmark::DoNotOptimize(&cube);
  }
  state.counters["rows"] = static_cast<double>(table->num_rows());
}
BENCHMARK(BM_CubeBuildThreads)->Arg(1)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_MatrixProfile(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> values(static_cast<size_t>(state.range(0)));
  double level = 0.0;
  for (auto& v : values) {
    level += rng.Gaussian(0.0, 1.0);
    v = level;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeMatrixProfile(values, 12));
  }
}
BENCHMARK(BM_MatrixProfile)->Arg(345)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

void BM_LiquorCubeBuild(benchmark::State& state) {
  const auto table = MakeLiquorTable();
  std::vector<AttrId> attrs{0, 1, 2, 3};
  for (auto _ : state) {
    const auto registry = ExplanationRegistry::Build(*table, attrs, 3);
    benchmark::DoNotOptimize(
        ExplanationCube(*table, registry, AggregateFunction::kSum, 0));
  }
}
BENCHMARK(BM_LiquorCubeBuild)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace tsexplain

BENCHMARK_MAIN();
