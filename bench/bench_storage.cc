// Storage-layer bench: CSV parse vs binary snapshot load on the
// liquor-scale dataset (the repo's largest simulated workload), plus a
// round-trip integrity gate.
//
// Emits BENCH_RESULT lines harvested by tools/run_benches.sh:
//   storage.liquor.csv_parse      median ReadCsvFile wall clock
//   storage.liquor.snapshot_load  median ReadTableSnapshot wall clock
//   storage.liquor.mmap_open      median OpenTableSnapshot wall clock
//
// The process exits non-zero when either snapshot load path is not
// bit-identical to the original (content fingerprint mismatch), when the
// owned load is not at least 5x faster than parsing, or when the
// zero-copy open is not at least 20x faster — run_benches.sh --quick runs
// this in CI, so the format cannot silently rot in correctness or speed.

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.h"
#include "src/common/timer.h"
#include "src/datagen/liquor_sim.h"
#include "src/storage/table_snapshot.h"
#include "src/table/csv_reader.h"

namespace tsexplain {
namespace {

// Minimal RFC-4180-style writer: fields are quoted only when they contain
// a delimiter, quote, or newline (csv_reader handles both spellings).
void AppendCsvField(const std::string& value, std::string* out) {
  if (value.find_first_of(",\"\r\n") == std::string::npos) {
    out->append(value);
    return;
  }
  out->push_back('"');
  for (char c : value) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

std::string TableToCsv(const Table& table) {
  const Schema& schema = table.schema();
  std::string csv;
  AppendCsvField(schema.time_name(), &csv);
  for (const std::string& name : schema.dimension_names()) {
    csv.push_back(',');
    AppendCsvField(name, &csv);
  }
  for (const std::string& name : schema.measure_names()) {
    csv.push_back(',');
    AppendCsvField(name, &csv);
  }
  csv.push_back('\n');
  char number[64];
  for (size_t r = 0; r < table.num_rows(); ++r) {
    AppendCsvField(table.time_labels()[static_cast<size_t>(table.time(r))],
                   &csv);
    for (size_t d = 0; d < schema.num_dimensions(); ++d) {
      const AttrId attr = static_cast<AttrId>(d);
      csv.push_back(',');
      AppendCsvField(table.dictionary(attr).ToString(table.dim(r, attr)),
                     &csv);
    }
    for (size_t m = 0; m < schema.num_measures(); ++m) {
      csv.push_back(',');
      // %.17g round-trips doubles exactly, keeping the comparison fair:
      // the CSV path must reproduce the same bits the snapshot carries.
      std::snprintf(number, sizeof(number), "%.17g",
                    table.measure(r, static_cast<int>(m)));
      csv.append(number);
    }
    csv.push_back('\n');
  }
  return csv;
}

bool WriteFile(const std::string& path, const std::string& contents) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const size_t written = std::fwrite(contents.data(), 1, contents.size(), f);
  std::fclose(f);
  return written == contents.size();
}

double MedianMs(std::vector<double> samples) {
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

int Run() {
  bench::PrintHeader("Storage: CSV parse vs binary snapshot load (liquor)");

  const std::unique_ptr<Table> table = MakeLiquorTable();
  const uint64_t fingerprint = storage::TableFingerprint(*table);
  std::printf("dataset: %zu rows, %zu buckets, %zu dims, %zu measures\n",
              table->num_rows(), table->num_time_buckets(),
              table->schema().num_dimensions(),
              table->schema().num_measures());

  // pid-suffixed: concurrent runs (CI + a dev shell on one machine) must
  // not overwrite each other's files mid-measurement.
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once, single-threaded main
  const char* tmp = std::getenv("TMPDIR");
  const std::string base = std::string(tmp ? tmp : "/tmp") + "/tsx_bench." +
                           std::to_string(::getpid());
  const std::string csv_path = base + ".csv";
  const std::string snapshot_path = base + ".tsx";
  struct Cleanup {
    const std::string& csv;
    const std::string& snap;
    ~Cleanup() {
      std::remove(csv.c_str());
      std::remove(snap.c_str());
    }
  } cleanup{csv_path, snapshot_path};
  const std::string csv = TableToCsv(*table);
  if (!WriteFile(csv_path, csv)) {
    std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
    return 1;
  }
  {
    const storage::StorageStatus status =
        storage::WriteTableSnapshot(*table, snapshot_path);
    if (!status.ok()) {
      std::fprintf(stderr, "snapshot write failed: %s\n",
                   status.message.c_str());
      return 1;
    }
  }

  CsvOptions options;
  options.time_column = table->schema().time_name();
  options.measure_columns = table->schema().measure_names();
  // The liquor labels ("1-2", "1-10", ...) are not zero-padded, so the
  // lexicographic sort_time would scramble them; rows are written in
  // first-appearance time order, which IS chronological here.
  options.sort_time = false;

  // Integrity gate first: BOTH load paths must reproduce the original
  // table bit for bit (content fingerprint over schema, labels,
  // dictionaries, codes, and raw measure bits).
  {
    const CsvResult parsed = ReadCsvFile(csv_path, options);
    if (!parsed.ok() ||
        storage::TableFingerprint(*parsed.table) != fingerprint) {
      std::fprintf(stderr, "FAIL: CSV round trip is not bit-identical\n");
      return 1;
    }
    const storage::TableSnapshotResult loaded =
        storage::ReadTableSnapshot(snapshot_path);
    if (!loaded.ok() ||
        storage::TableFingerprint(*loaded.table) != fingerprint) {
      std::fprintf(stderr,
                   "FAIL: snapshot round trip is not bit-identical (%s)\n",
                   loaded.status.message.c_str());
      return 1;
    }
    const storage::TableSnapshotResult mapped =
        storage::OpenTableSnapshot(snapshot_path);
    if (!mapped.ok() ||
        storage::TableFingerprint(*mapped.table) != fingerprint) {
      std::fprintf(stderr,
                   "FAIL: zero-copy open is not bit-identical (%s)\n",
                   mapped.status.message.c_str());
      return 1;
    }
    if (!mapped.mapped) {
      std::printf("note: zero-copy open fell back to the owned path "
                  "(platform without mmap?)\n");
    }
  }

  constexpr int kCsvReps = 5;
  constexpr int kSnapshotReps = 15;
  std::vector<double> csv_ms;
  for (int rep = 0; rep < kCsvReps; ++rep) {
    Timer timer;
    const CsvResult parsed = ReadCsvFile(csv_path, options);
    csv_ms.push_back(timer.ElapsedMs());
    if (!parsed.ok()) return 1;
  }
  std::vector<double> snapshot_ms;
  for (int rep = 0; rep < kSnapshotReps; ++rep) {
    Timer timer;
    const storage::TableSnapshotResult loaded =
        storage::ReadTableSnapshot(snapshot_path);
    snapshot_ms.push_back(timer.ElapsedMs());
    if (!loaded.ok()) return 1;
  }
  bool any_mapped = true;
  std::vector<double> mmap_ms;
  for (int rep = 0; rep < kSnapshotReps; ++rep) {
    Timer timer;
    const storage::TableSnapshotResult mapped =
        storage::OpenTableSnapshot(snapshot_path);
    mmap_ms.push_back(timer.ElapsedMs());
    if (!mapped.ok()) return 1;
    any_mapped = any_mapped && mapped.mapped;
  }

  const double parse = MedianMs(csv_ms);
  const double load = MedianMs(snapshot_ms);
  const double mmap_open = MedianMs(mmap_ms);
  const double speedup = parse / load;
  const double mmap_speedup = parse / mmap_open;
  std::printf("csv parse      %s   (%zu bytes)\n",
              bench::FormatMs(parse).c_str(), csv.size());
  std::printf("snapshot load  %s   (owned columns)\n",
              bench::FormatMs(load).c_str());
  std::printf("mmap open      %s   (zero-copy)\n",
              bench::FormatMs(mmap_open).c_str());
  std::printf("speedup        %.1fx owned, %.1fx zero-copy\n", speedup,
              mmap_speedup);
  bench::EmitResult("storage.liquor.csv_parse", parse);
  bench::EmitResult("storage.liquor.snapshot_load", load);
  bench::EmitResult("storage.liquor.mmap_open", mmap_open);

  // The acceptance floors: owned load beats CSV parse by 5x; the
  // zero-copy open by 20x (it skips the read + every column memcpy). The
  // 20x gate only binds where mmap actually engaged.
  if (speedup < 5.0) {
    std::fprintf(stderr, "FAIL: snapshot speedup %.1fx is below the 5x bar\n",
                 speedup);
    return 1;
  }
  if (any_mapped && mmap_speedup < 20.0) {
    std::fprintf(stderr,
                 "FAIL: zero-copy speedup %.1fx is below the 20x bar\n",
                 mmap_speedup);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace tsexplain

int main() { return tsexplain::Run(); }
