// Reproduces paper Figure 10: distance percent (%) of TSExplain vs the
// explanation-agnostic baselines (Bottom-Up, FLUSS, NNSegment) across SNR
// levels, with the oracle K. Expected shape: TSExplain beats every
// baseline; Bottom-Up is the closest; TSExplain approaches 0 for SNR > 35.

#include <cstdio>
#include <limits>
#include <map>
#include <vector>

#include "bench_util.h"
#include "src/baselines/bottom_up.h"
#include "src/baselines/fluss.h"
#include "src/baselines/nnsegment.h"
#include "src/baselines/optimal_pla.h"
#include "src/common/timer.h"
#include "src/datagen/synthetic.h"
#include "src/eval/segmentation_distance.h"
#include "src/table/group_by.h"

namespace tsexplain {
namespace {

constexpr int kDatasets = 20;
const int kWindowSweep[] = {4, 6, 8, 12, 16};

struct Averages {
  std::map<double, double> by_snr;  // snr -> average distance percent
  double overall = 0.0;
};

void Run() {
  bench::PrintHeader(
      "Figure 10: distance percent vs SNR (TSExplain vs Bottom-Up / FLUSS "
      "/ NNSegment, oracle K, 20 datasets per SNR)");
  Timer timer;
  const std::vector<double> snrs = PaperSnrLevels();

  std::map<double, double> tse_avg, bu_avg, opt_pla_avg;
  // Per window size, FLUSS/NNSegment averages (paper: "we try multiple
  // parameters and report the best overall results").
  std::map<int, Averages> fluss_by_w, nn_by_w;

  for (double snr : snrs) {
    for (int d = 0; d < kDatasets; ++d) {
      SyntheticConfig config;
      config.seed = static_cast<uint64_t>(d) + 1;
      config.snr_db = snr;
      const SyntheticDataset ds = GenerateSynthetic(config);
      const int oracle_k = ds.ground_truth_k();
      const int n = config.length;

      TSExplainConfig tse_config;
      tse_config.measure = "value";
      tse_config.explain_by_names = {"category"};
      tse_config.max_order = 1;
      tse_config.fixed_k = oracle_k;
      TSExplain engine(*ds.table, tse_config);
      const TSExplainResult result = engine.Run();
      tse_avg[snr] += DistancePercent(result.segmentation.cuts,
                                      ds.ground_truth_cuts, n) /
                      kDatasets;

      const TimeSeries agg =
          GroupByTime(*ds.table, AggregateFunction::kSum, 0);
      bu_avg[snr] += DistancePercent(BottomUpSegment(agg.values, oracle_k),
                                     ds.ground_truth_cuts, n) /
                     kDatasets;
      // Ablation: the EXACT optimum of the shape-only objective. Its
      // residual error is the irreducible cost of ignoring explanations.
      opt_pla_avg[snr] +=
          DistancePercent(OptimalPlaSegment(agg.values, oracle_k),
                          ds.ground_truth_cuts, n) /
          kDatasets;
      for (int w : kWindowSweep) {
        const double fluss_d =
            DistancePercent(FlussSegment(agg.values, oracle_k, w),
                            ds.ground_truth_cuts, n);
        fluss_by_w[w].by_snr[snr] += fluss_d / kDatasets;
        fluss_by_w[w].overall += fluss_d / (kDatasets * snrs.size());
        const double nn_d =
            DistancePercent(NnSegment(agg.values, oracle_k, w),
                            ds.ground_truth_cuts, n);
        nn_by_w[w].by_snr[snr] += nn_d / kDatasets;
        nn_by_w[w].overall += nn_d / (kDatasets * snrs.size());
      }
    }
  }

  // Pick the best-overall window per baseline, like the paper.
  auto best_window = [](const std::map<int, Averages>& by_w) {
    int best = 0;
    double best_value = std::numeric_limits<double>::infinity();
    for (const auto& [w, averages] : by_w) {
      if (averages.overall < best_value) {
        best_value = averages.overall;
        best = w;
      }
    }
    return best;
  };
  const int fluss_w = best_window(fluss_by_w);
  const int nn_w = best_window(nn_by_w);
  std::printf("\n  baseline windows swept {4,6,8,12,16}; best overall: "
              "FLUSS w=%d, NNSegment w=%d\n\n",
              fluss_w, nn_w);

  std::printf("  %-6s %12s %12s %12s %12s %12s\n", "SNR", "TSExplain",
              "Bottom-Up", "FLUSS", "NNSegment", "opt-PLA*");
  bool tse_always_best = true;
  double bu_gap = 0.0, fluss_gap = 0.0, nn_gap = 0.0;
  for (double snr : snrs) {
    const double tse = tse_avg[snr];
    const double bu = bu_avg[snr];
    const double fl = fluss_by_w[fluss_w].by_snr[snr];
    const double nn = nn_by_w[nn_w].by_snr[snr];
    std::printf("  %-6.0f %11.2f%% %11.2f%% %11.2f%% %11.2f%% %11.2f%%\n",
                snr, tse, bu, fl, nn, opt_pla_avg[snr]);
    if (tse > bu + 1e-9 || tse > fl + 1e-9 || tse > nn + 1e-9) {
      tse_always_best = false;
    }
    bu_gap += (bu - tse) / snrs.size();
    fluss_gap += (fl - tse) / snrs.size();
    nn_gap += (nn - tse) / snrs.size();
  }

  std::printf("\n  shape check -- TSExplain best at every SNR: %s\n",
              tse_always_best ? "PASS" : "FAIL (see EXPERIMENTS.md)");
  bool tse_best_from_30 = true;
  for (double snr : {30.0, 35.0, 40.0, 45.0, 50.0}) {
    const double tse = tse_avg[snr];
    if (tse > bu_avg[snr] + 1e-9 ||
        tse > fluss_by_w[fluss_w].by_snr[snr] + 1e-9 ||
        tse > nn_by_w[nn_w].by_snr[snr] + 1e-9) {
      tse_best_from_30 = false;
    }
  }
  std::printf("  shape check -- TSExplain best for SNR >= 30 and within "
              "1.5%% of the best below: %s\n",
              (tse_best_from_30 &&
               tse_avg[20] <= bu_avg[20] + 1.5 &&
               tse_avg[25] <= bu_avg[25] + 1.5)
                  ? "PASS"
                  : "FAIL");
  std::printf("  shape check -- Bottom-Up is the closest baseline "
              "(avg gap BU %.2f <= FLUSS %.2f, NNSeg %.2f): %s\n",
              bu_gap, fluss_gap, nn_gap,
              (bu_gap <= fluss_gap && bu_gap <= nn_gap) ? "PASS" : "FAIL");
  std::printf("  shape check -- TSExplain < 2%% for SNR >= 40: %s\n",
              (tse_avg[40] < 2.0 && tse_avg[45] < 2.0 && tse_avg[50] < 2.0)
                  ? "PASS"
                  : "FAIL");
  std::printf("  ablation -- even the EXACT shape-only optimum (opt-PLA*) "
              "cannot reach TSExplain on clean data: %s "
              "(%.2f%% vs %.2f%% at SNR 50)\n",
              opt_pla_avg[50] > tse_avg[50] + 1.0 ? "PASS" : "FAIL",
              opt_pla_avg[50], tse_avg[50]);
  std::printf("  total time: %s\n",
              bench::FormatMs(timer.ElapsedMs()).c_str());
  bench::EmitResult("fig10.synthetic_accuracy.total", timer.ElapsedMs());
}

}  // namespace
}  // namespace tsexplain

int main() {
  tsexplain::Run();
  return 0;
}
