// Reproduces paper Figure 13 + Table 4: segmentation of the S&P 500 index
// (paper found K*=4: rise to 2/6, crash to 3/24, recovery to 8/25, dip to
// 10/1) with hierarchical explain-by attributes category > subcategory >
// stock. Expected shape: technology drives every phase; financial appears
// in the crash but NOT in the recovery; internet retail appears early.

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "src/common/timer.h"

namespace tsexplain {
namespace {

bool SegmentHas(const SegmentExplanation& seg, const std::string& needle,
                int tau) {
  for (const ExplanationItem& item : seg.top) {
    if (item.description.find(needle) != std::string::npos &&
        (tau == 0 || item.tau == tau)) {
      return true;
    }
  }
  return false;
}

void Run() {
  bench::PrintHeader("Figure 13 / Table 4: S&P 500");
  Timer timer;
  bench::Workload w = bench::MakeSp500Workload();
  w.config.use_filter = true;
  w.config.use_guess_verify = true;
  TSExplain engine(*w.table, w.config);
  const TSExplainResult result = bench::RunCaseStudy(w, engine);

  const bool k_in_band = result.chosen_k >= 3 && result.chosen_k <= 7;
  int tech_segments = 0;
  bool fin_in_decline = false, fin_in_recovery_top = false;
  for (const SegmentExplanation& seg : result.segments) {
    if (SegmentHas(seg, "technology", 0)) ++tech_segments;
    // A segment whose overall trend dropped: its '-' explanations.
    if (SegmentHas(seg, "financial", -1)) fin_in_decline = true;
    if (SegmentHas(seg, "financial", +1)) fin_in_recovery_top = true;
  }
  std::printf("\n  shape check -- K* in [3, 7] (paper: 4): %s (K*=%d)\n",
              k_in_band ? "PASS" : "FAIL", result.chosen_k);
  std::printf("  shape check -- technology in most segments "
              "(%d of %zu): %s\n",
              tech_segments, result.segments.size(),
              tech_segments * 2 >= static_cast<int>(result.segments.size())
                  ? "PASS"
                  : "FAIL");
  std::printf("  shape check -- financial contributes to a decline but not "
              "to a rise (Table 4): %s\n",
              (fin_in_decline && !fin_in_recovery_top) ? "PASS" : "FAIL");
  std::printf("  epsilon after hierarchy dedup (paper: 610): %zu\n",
              result.epsilon);
  std::printf("  total time: %s\n",
              bench::FormatMs(timer.ElapsedMs()).c_str());
  bench::EmitResult("fig13.sp500.total", timer.ElapsedMs());
}

}  // namespace
}  // namespace tsexplain

int main() {
  tsexplain::Run();
  return 0;
}
