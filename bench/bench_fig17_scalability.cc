// Reproduces paper Figure 17: latency of VanillaTSExplain vs optimized
// TSExplain for synthetic series of length 100..6400. Like the paper, a
// variant is terminated once it exceeds a time budget (theirs: 100 s; ours
// defaults to 30 s per run and can be overridden with TSE_SCALE_BUDGET_S).
// Expected shape: Vanilla grows ~cubically; the optimized pipeline grows
// far slower.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_util.h"
#include "src/common/strings.h"
#include "src/common/timer.h"
#include "src/datagen/synthetic.h"
#include "src/pipeline/tsexplain.h"

namespace tsexplain {
namespace {

constexpr int kLengths[] = {100, 200, 400, 800, 1600, 3200, 6400};
constexpr int kSeriesPerLength = 3;  // paper uses 5; 3 keeps the suite fast

double BudgetSeconds() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once, single-threaded main
  if (const char* env = std::getenv("TSE_SCALE_BUDGET_S")) {
    return std::atof(env);
  }
  return 60.0;
}

// Returns average latency (ms), or a negative value if over budget.
double RunVariant(int length, bool optimized, int threads, double budget_s) {
  double total_ms = 0.0;
  for (int i = 0; i < kSeriesPerLength; ++i) {
    SyntheticConfig sconfig;
    sconfig.length = length;
    sconfig.snr_db = 35.0;
    sconfig.seed = 9000 + static_cast<uint64_t>(length) * 7 +
                   static_cast<uint64_t>(i);
    sconfig.num_interior_cuts = 6;
    sconfig.min_gap = std::max(6, length / 40);
    const SyntheticDataset ds = GenerateSynthetic(sconfig);

    TSExplainConfig config;
    config.measure = "value";
    config.explain_by_names = {"category"};
    config.max_order = 1;
    config.threads = threads;
    if (optimized) {
      config.use_filter = true;
      config.use_guess_verify = true;
      config.use_sketch = true;
    }
    Timer timer;
    TSExplain engine(*ds.table, config);
    engine.Run();
    total_ms += timer.ElapsedMs();
    if (timer.ElapsedSeconds() > budget_s) return -1.0;
  }
  return total_ms / kSeriesPerLength;
}

void Run() {
  bench::PrintHeader(
      "Figure 17: scalability with series length (3 series per length, "
      "SNR = 35)");
  const double budget_s = BudgetSeconds();
  std::printf("  per-run time budget: %.0f s (paper terminates at 100 s)\n\n",
              budget_s);
  std::printf("  %-8s %18s %18s %18s\n", "length", "VanillaTSExplain",
              "TSExplain(O1+O2)", "O1+O2 threads=8");

  // The threads=8 column exercises the parallel core (cube build, TopFor
  // pre-warm fan-out, distance fill); results are bit-identical to
  // threads=1, only the wall clock changes (on multi-core hosts).
  bool vanilla_alive = true, optimized_alive = true, parallel_alive = true;
  std::vector<double> vanilla_ms, optimized_ms;
  for (int length : kLengths) {
    std::string vanilla_cell = "terminated";
    std::string optimized_cell = "terminated";
    std::string parallel_cell = "terminated";
    if (vanilla_alive) {
      const double ms =
          RunVariant(length, /*optimized=*/false, /*threads=*/1, budget_s);
      if (ms < 0) {
        vanilla_alive = false;
      } else {
        vanilla_ms.push_back(ms);
        vanilla_cell = bench::FormatMs(ms);
        bench::EmitResult(StrFormat("fig17.len%d.vanilla", length), ms);
      }
    }
    if (optimized_alive) {
      const double ms =
          RunVariant(length, /*optimized=*/true, /*threads=*/1, budget_s);
      if (ms < 0) {
        optimized_alive = false;
      } else {
        optimized_ms.push_back(ms);
        optimized_cell = bench::FormatMs(ms);
        bench::EmitResult(StrFormat("fig17.len%d.optimized", length), ms);
      }
    }
    if (parallel_alive) {
      const double ms =
          RunVariant(length, /*optimized=*/true, /*threads=*/8, budget_s);
      if (ms < 0) {
        parallel_alive = false;
      } else {
        parallel_cell = bench::FormatMs(ms);
        bench::EmitResult(StrFormat("fig17.len%d.optimized_t8", length),
                          ms);
      }
    }
    std::printf("  %-8d %18s %18s %18s\n", length, vanilla_cell.c_str(),
                optimized_cell.c_str(), parallel_cell.c_str());
    if (!vanilla_alive && !optimized_alive && !parallel_alive) break;
  }

  // Shape: the optimized pipeline must scale to strictly longer series
  // within the same budget, and be far faster at the longest shared n.
  const size_t shared = std::min(vanilla_ms.size(), optimized_ms.size());
  const bool scales_further = optimized_ms.size() > vanilla_ms.size() ||
                              optimized_ms.size() == 7u;
  double speedup = 0.0;
  if (shared > 0) speedup = vanilla_ms[shared - 1] / optimized_ms[shared - 1];
  std::printf("\n  shape check -- optimizations reach longer series within "
              "budget: %s\n",
              scales_further ? "PASS" : "FAIL");
  std::printf("  speedup at longest shared length: %.1fx (paper reports up "
              "to 13x)\n",
              speedup);
}

}  // namespace
}  // namespace tsexplain

int main() {
  tsexplain::Run();
  return 0;
}
