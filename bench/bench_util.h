// Shared helpers for the benchmark harness: workload factories for the four
// paper datasets, optimization presets (Figure 15's Vanilla / w-filter / O1
// / O2 / O1+O2), and report printers (segment tables, ASCII charts).

#ifndef TSEXPLAIN_BENCH_BENCH_UTIL_H_
#define TSEXPLAIN_BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/pipeline/tsexplain.h"

namespace tsexplain {
namespace bench {

/// One paper dataset: the simulated relation plus the query the paper runs
/// against it.
struct Workload {
  std::string name;
  std::unique_ptr<Table> table;
  TSExplainConfig config;  // optimizations all off (Vanilla)
};

Workload MakeCovidTotalWorkload();
Workload MakeCovidDailyWorkload();
Workload MakeSp500Workload();
Workload MakeLiquorWorkload();
/// All four, in the paper's Table 6 order.
std::vector<Workload> AllWorkloads();

/// Optimization presets of Figure 15.
enum class OptPreset { kVanilla, kFilter, kO1, kO2, kO1O2 };

inline constexpr OptPreset kAllPresets[] = {
    OptPreset::kVanilla, OptPreset::kFilter, OptPreset::kO1, OptPreset::kO2,
    OptPreset::kO1O2,
};

const char* PresetName(OptPreset preset);
void ApplyPreset(OptPreset preset, TSExplainConfig* config);

/// Report printers -------------------------------------------------------
void PrintHeader(const std::string& title);
void PrintSubHeader(const std::string& title);

/// Fixed-width milliseconds, e.g. "  175.3 ms".
std::string FormatMs(double ms);

/// Lowercases and folds non-alphanumerics to '_' so workload titles can be
/// embedded in EmitResult names ("S&P 500" -> "s_p_500").
std::string ResultSlug(const std::string& text);

/// Prints a stable machine-readable timing line on stdout:
///   BENCH_RESULT <name> <ms>
/// tools/run_benches.sh harvests these into the BENCH_*.json `results`
/// array, so headline figure timings are tracked across PRs in addition to
/// whole-binary wall-clock. Names must not contain whitespace; use
/// dot-separated segments like "fig16.liquor.optimized".
void EmitResult(const std::string& name, double ms);

/// Prints the process-global metrics registry as one machine-readable line:
///   BENCH_METRICS {compact-json}
/// (the RenderMetricsJson shape of docs/OBSERVABILITY.md). run_benches.sh
/// harvests the last such line into the per-bench `metrics` object of
/// BENCH_*.json, so counter/histogram state at the end of a bench run is
/// archived next to its timings.
void EmitMetricsSnapshot();

/// Renders the aggregated series as an ASCII chart with '|' markers at the
/// cut positions.
void PrintAsciiChart(const TimeSeries& ts, const std::vector<int>& cuts,
                     int height = 10, int width = 96);

/// Prints a Table-3/4/5-style per-segment explanation table.
void PrintSegmentsTable(const TSExplainResult& result);

/// Prints "label: t0 | t1 | ... " using the series' time labels.
void PrintCutDates(const std::string& label, const std::vector<int>& cuts,
                   const std::vector<std::string>& time_labels);

/// Explanation-agnostic baseline segmentations of one series at the same K
/// (section 7.2's comparison setup). `window` is the subsequence length for
/// FLUSS / NNSegment; <= 0 picks max(3, n/64).
struct BaselineCuts {
  std::vector<int> bottom_up;
  std::vector<int> fluss;
  std::vector<int> nnsegment;
  int window = 0;
};
BaselineCuts RunBaselines(const std::vector<double>& values, int k,
                          int window = 0);

/// Number of adjacent segment pairs whose top-explanation lists are
/// identical (the paper's "less explanation diversity" critique of the
/// baselines, section 7.4).
int CountIdenticalNeighborSegments(TSExplain& engine,
                                   const std::vector<int>& cuts);

/// Runs one full case study: TSExplain (auto K unless fixed in `w.config`)
/// plus the three baselines at the same K, printing the paper-style
/// figures/tables. Returns the TSExplain result for shape checks.
TSExplainResult RunCaseStudy(Workload& w, TSExplain& engine);

}  // namespace bench
}  // namespace tsexplain

#endif  // TSEXPLAIN_BENCH_BENCH_UTIL_H_
