// Fuzz target: the NDJSON protocol handler — the full attacker surface a
// TCP client reaches. Each input is a session against a fresh
// ExplainService with one small registered dataset. Lines are fed to the
// handler two ways:
//   * raw: the line is parsed as JSON (handler path) or answered with
//     MakeParseError, exactly like the transport;
//   * assembled (line starts with 0x01): the remaining bytes pick an op
//     and a soup of known field names with adversarial values — the
//     structure-aware mode that reaches deep op handlers a text mutator
//     rarely finds.
// File-path fields ("path", "csv_path") are rewritten into a per-input
// sandbox directory before dispatch, so ops like save_cache/load_cache
// exercise real file round trips without escaping the sandbox. Every
// response must be non-empty, valid JSON — the connection-stays-alive
// contract.

#include <dirent.h>
#include <sys/stat.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "fuzz/fuzz_util.h"
#include "src/common/json.h"
#include "src/service/explain_service.h"
#include "src/service/protocol.h"
#include "src/table/csv_reader.h"

namespace {

using tsexplain::JsonValue;
using tsexplain::fuzz::ByteSource;

constexpr const char* kOps[] = {
    "register",       "list_datasets", "drop_dataset",  "explain",
    "recommend",      "open_session",  "append",        "explain_session",
    "close_session",  "save_cache",    "load_cache",    "recover_session",
    "stats",          "metrics",       "shutdown",      "bogus_op",
};

constexpr const char* kFields[] = {
    "id",         "name",        "dataset",       "measure",
    "explain_by", "agg",         "order",         "m",
    "k",          "max_k",       "smooth",        "threads",
    "diff_metric", "variance_metric", "fast",     "filter",
    "filter_ratio", "guess_verify", "initial_guess", "sketch",
    "dedupe",     "exclude",     "tenant",        "trendlines",
    "k_curve",    "trace",       "session",       "label",
    "rows",       "csv",         "csv_path",      "path",
    "time_column", "measures",   "sort_time",     "op",
};

JsonValue SoupValue(ByteSource& src, int depth);

JsonValue SoupArray(ByteSource& src, int depth) {
  std::vector<JsonValue> items;
  const size_t n = src.NextByte() % 4;
  for (size_t i = 0; i < n; ++i) items.push_back(SoupValue(src, depth + 1));
  return JsonValue::MakeArray(std::move(items));
}

JsonValue SoupValue(ByteSource& src, int depth) {
  switch (depth > 3 ? src.NextByte() % 6 : src.NextByte() % 8) {
    case 0:
      return JsonValue::MakeString("region");
    case 1:
      return JsonValue::MakeString("value");
    case 2:
      return JsonValue::MakeNumber(
          static_cast<double>(src.NextBelow(4000)) - 2000.0);
    case 3:
      return JsonValue::MakeBool(src.NextByte() % 2 != 0);
    case 4:
      return JsonValue::MakeString(src.NextString(24));
    case 5:
      return JsonValue::MakeNumber(src.NextByte() % 2 != 0 ? 1e300 : -0.0);
    case 6:
      return SoupArray(src, depth);
    default: {
      // A row-shaped object, so "append" sometimes gets plausible rows.
      std::vector<std::pair<std::string, JsonValue>> members;
      members.emplace_back("dims", SoupArray(src, depth));
      members.emplace_back("measures", SoupArray(src, depth));
      return JsonValue::MakeObject(std::move(members));
    }
  }
}

JsonValue AssembleRequest(ByteSource& src) {
  std::vector<std::pair<std::string, JsonValue>> members;
  members.emplace_back(
      "op", JsonValue::MakeString(
                kOps[src.NextByte() % (sizeof(kOps) / sizeof(kOps[0]))]));
  members.emplace_back("id", JsonValue::MakeNumber(src.NextByte()));
  const size_t nfields = src.NextByte() % 8;
  for (size_t i = 0; i < nfields; ++i) {
    const char* key =
        kFields[src.NextByte() % (sizeof(kFields) / sizeof(kFields[0]))];
    members.emplace_back(key, SoupValue(src, 0));
  }
  return JsonValue::MakeObject(std::move(members));
}

// Rewrites "path"/"csv_path" string members to land inside `sandbox`
// (basename characters only), preserving everything else. Lets the
// fuzzer chain save_cache -> load_cache through real files while staying
// confined to the per-input scratch directory.
JsonValue SandboxPaths(const JsonValue& request, const std::string& sandbox) {
  if (!request.IsObject()) return request;
  std::vector<std::pair<std::string, JsonValue>> members;
  for (const auto& member : request.members()) {
    if ((member.first == "path" || member.first == "csv_path") &&
        member.second.IsString()) {
      std::string base;
      for (const char c : member.second.AsString()) {
        if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
            (c >= '0' && c <= '9') || c == '_' || c == '.') {
          base.push_back(c);
          if (base.size() >= 16) break;
        }
      }
      if (base.empty() || base.find_first_not_of('.') == std::string::npos) {
        base = "f";
      }
      members.emplace_back(member.first,
                           JsonValue::MakeString(sandbox + "/" + base));
    } else {
      members.emplace_back(member.first, member.second);
    }
  }
  return JsonValue::MakeObject(std::move(members));
}

void RemoveTreeShallow(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d) {
    while (struct dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      std::remove((dir + "/" + name).c_str());
    }
    ::closedir(d);
  }
  ::rmdir(dir.c_str());
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string sandbox = tsexplain::fuzz::TempPath("proto");
  ::mkdir(sandbox.c_str(), 0700);

  {
    tsexplain::ServiceOptions options;
    options.cache_capacity_bytes = 1u << 20;
    options.session_log_dir = sandbox;
    tsexplain::ExplainService service(options);
    tsexplain::CsvOptions csv_options;
    csv_options.time_column = "time";
    csv_options.measure_columns = {"value"};
    std::string register_error;
    FUZZ_ASSERT(service.registry().RegisterCsvText(
        "ds", tsexplain::fuzz::kSessionBaseCsv(), csv_options,
        &register_error));
    tsexplain::ProtocolHandler handler(service);

    // Split the input into NDJSON lines; cap the per-input work so one
    // giant input cannot stall the fuzzer.
    const char* bytes = reinterpret_cast<const char*>(data);
    size_t line_start = 0;
    int lines = 0;
    for (size_t i = 0; i <= size && lines < 64; ++i) {
      if (i != size && bytes[i] != '\n') continue;
      const std::string line(bytes + line_start, i - line_start);
      line_start = i + 1;
      if (line.empty()) continue;
      ++lines;

      std::string response;
      if (static_cast<uint8_t>(line[0]) == 0x01) {
        ByteSource src(reinterpret_cast<const uint8_t*>(line.data()) + 1,
                       line.size() - 1);
        response =
            handler.Handle(SandboxPaths(AssembleRequest(src), sandbox));
      } else {
        JsonValue request;
        std::string error;
        if (tsexplain::ParseJson(line, &request, &error)) {
          response = handler.Handle(SandboxPaths(request, sandbox));
        } else {
          response = handler.MakeParseError(error);
        }
      }
      // Connection-stays-alive contract: every request gets exactly one
      // well-formed JSON object line back, whatever the input was.
      FUZZ_ASSERT(!response.empty());
      FUZZ_ASSERT(response.find('\n') == std::string::npos);
      JsonValue parsed;
      std::string parse_error;
      FUZZ_ASSERT(tsexplain::ParseJson(response, &parsed, &parse_error));
      FUZZ_ASSERT(parsed.IsObject());
    }

    // The service must still be coherent after the hostile session.
    const tsexplain::ServiceStats stats = service.Stats();
    (void)stats;
  }

  RemoveTreeShallow(sandbox);
  return 0;
}
