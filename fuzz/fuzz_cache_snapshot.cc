// Fuzz target: storage/cache_snapshot — the warm-start file `load_cache`
// points the service at. A hostile file must come back as a structured
// StorageErrorCode; an accepted one must survive a write/re-read round
// trip unchanged.

#include <cstddef>
#include <cstdint>
#include <string>

#include "fuzz/fuzz_util.h"
#include "src/storage/cache_snapshot.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const tsexplain::fuzz::TempFile file(data, size, "cch");

  tsexplain::storage::CacheSnapshot snapshot;
  const tsexplain::storage::StorageStatus status =
      tsexplain::storage::ReadCacheSnapshot(file.path(), &snapshot);
  if (!status.ok()) {
    FUZZ_ASSERT(!status.message.empty());
    return 0;
  }
  // Accepted content is bounded by the input: every dataset stamp and
  // entry was decoded from distinct payload bytes.
  FUZZ_ASSERT(snapshot.datasets.size() <= size);
  FUZZ_ASSERT(snapshot.entries.size() <= size);

  const std::string copy = tsexplain::fuzz::TempPath("cch_rt");
  FUZZ_ASSERT(tsexplain::storage::WriteCacheSnapshot(snapshot, copy).ok());
  tsexplain::storage::CacheSnapshot reread;
  FUZZ_ASSERT(tsexplain::storage::ReadCacheSnapshot(copy, &reread).ok());
  std::remove(copy.c_str());

  FUZZ_ASSERT(reread.datasets.size() == snapshot.datasets.size());
  FUZZ_ASSERT(reread.entries.size() == snapshot.entries.size());
  for (size_t i = 0; i < snapshot.entries.size(); ++i) {
    FUZZ_ASSERT(reread.entries[i].key == snapshot.entries[i].key);
    FUZZ_ASSERT(reread.entries[i].json == snapshot.entries[i].json);
  }
  for (size_t i = 0; i < snapshot.datasets.size(); ++i) {
    FUZZ_ASSERT(reread.datasets[i].name == snapshot.datasets[i].name);
    FUZZ_ASSERT(reread.datasets[i].uid == snapshot.datasets[i].uid);
    FUZZ_ASSERT(reread.datasets[i].fingerprint ==
                snapshot.datasets[i].fingerprint);
  }
  return 0;
}
