// Driver shim that turns a libFuzzer harness into a plain binary: feeds
// every file (or every file in every directory) named on the command line
// to LLVMFuzzerTestOneInput. This is how the committed seed corpora run
// as regression tests under ctest in the default (non-libFuzzer) build —
// see docs/FUZZING.md.
//
// Exit status: 0 when every input replayed without trapping; 1 on a
// missing path or an unreadable file (a committed corpus must always be
// replayable). A FUZZ_ASSERT / sanitizer failure aborts the process,
// which ctest reports as the test failure it is.

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

bool ReadFile(const std::string& path, std::vector<uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  out->clear();
  uint8_t chunk[1u << 16];
  size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), f)) > 0) {
    out->insert(out->end(), chunk, chunk + n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

// Regular files directly inside `dir` (no recursion — corpus directories
// are flat), sorted for a deterministic replay order.
bool ListDir(const std::string& dir, std::vector<std::string>* out) {
  DIR* d = ::opendir(dir.c_str());
  if (!d) return false;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    const std::string path = dir + "/" + name;
    struct stat st;
    if (::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode)) {
      out->push_back(path);
    }
  }
  ::closedir(d);
  std::sort(out->begin(), out->end());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-dir-or-file>...\n", argv[0]);
    return 1;
  }
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    struct stat st;
    if (::stat(arg.c_str(), &st) != 0) {
      std::fprintf(stderr, "%s: no such file or directory\n", arg.c_str());
      return 1;
    }
    if (S_ISDIR(st.st_mode)) {
      if (!ListDir(arg, &inputs)) {
        std::fprintf(stderr, "%s: cannot list directory\n", arg.c_str());
        return 1;
      }
    } else {
      inputs.push_back(arg);
    }
  }
  size_t replayed = 0;
  std::vector<uint8_t> bytes;
  for (const std::string& path : inputs) {
    if (!ReadFile(path, &bytes)) {
      std::fprintf(stderr, "%s: cannot read\n", path.c_str());
      return 1;
    }
    LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
    ++replayed;
  }
  std::printf("replayed %zu corpus input(s)\n", replayed);
  return 0;
}
