// Fuzz target: service/query_key — the canonicalizer every cache key and
// engine key flows through. Builds a TSExplainConfig from the input bytes
// (names may contain separators, quotes, NULs...) and asserts the
// canonicalization contract: determinism, engine_key a prefix of
// query_key, the dataset prefix property, and invariance under
// explain-by / exclude permutation and duplication.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/fuzz_util.h"
#include "src/service/query_key.h"

namespace {

using tsexplain::CanonicalQuery;
using tsexplain::TSExplainConfig;

TSExplainConfig ConfigFrom(tsexplain::fuzz::ByteSource& src) {
  TSExplainConfig config;
  config.aggregate =
      static_cast<tsexplain::AggregateFunction>(src.NextBelow(3));
  config.measure = src.NextString(24);
  const size_t nattrs = src.NextByte() % 5;
  for (size_t i = 0; i < nattrs; ++i) {
    config.explain_by_names.push_back(src.NextString(16));
  }
  config.max_order = static_cast<int>(src.NextBelow(6));
  config.m = static_cast<int>(src.NextBelow(8));
  config.diff_metric =
      static_cast<tsexplain::DiffMetricKind>(src.NextBelow(3));
  config.variance_metric =
      static_cast<tsexplain::VarianceMetric>(src.NextBelow(4));
  config.smooth_window = static_cast<int>(src.NextBelow(9));
  config.fixed_k = static_cast<int>(src.NextBelow(4));
  config.max_k = static_cast<int>(src.NextBelow(24));
  config.use_filter = src.NextByte() % 2 != 0;
  config.filter_ratio = src.NextBelow(1000) / 1000.0;
  config.use_guess_verify = src.NextByte() % 2 != 0;
  config.initial_guess = static_cast<int>(src.NextBelow(64));
  config.use_sketch = src.NextByte() % 2 != 0;
  config.sketch_params.max_segment_len = static_cast<int>(src.NextBelow(32));
  config.sketch_params.target_size = static_cast<int>(src.NextBelow(32));
  config.dedupe_redundant = src.NextByte() % 2 != 0;
  config.threads = static_cast<int>(src.NextBelow(16));
  const size_t nexclude = src.NextByte() % 5;
  for (size_t i = 0; i < nexclude; ++i) {
    config.exclude.push_back(src.NextString(16));
  }
  return config;
}

bool IsPrefix(const std::string& prefix, const std::string& s) {
  return s.compare(0, prefix.size(), prefix) == 0;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  tsexplain::fuzz::ByteSource src(data, size);
  const std::string dataset = src.NextString(24);
  const TSExplainConfig config = ConfigFrom(src);

  const CanonicalQuery keys = CanonicalizeQuery(dataset, config);
  // Deterministic.
  const CanonicalQuery again = CanonicalizeQuery(dataset, config);
  FUZZ_ASSERT(keys.engine_key == again.engine_key);
  FUZZ_ASSERT(keys.query_key == again.query_key);
  // Structural: the engine key prefixes the query key, and both live
  // under the dataset's invalidation prefix.
  FUZZ_ASSERT(IsPrefix(keys.engine_key, keys.query_key));
  const std::string prefix = tsexplain::DatasetKeyPrefix(dataset);
  FUZZ_ASSERT(IsPrefix(prefix, keys.engine_key));

  // Reversing and duplicating the order-insensitive lists must not
  // change either key (sorted + deduplicated by contract).
  TSExplainConfig shuffled = config;
  std::reverse(shuffled.explain_by_names.begin(),
               shuffled.explain_by_names.end());
  std::reverse(shuffled.exclude.begin(), shuffled.exclude.end());
  if (!config.explain_by_names.empty()) {
    shuffled.explain_by_names.push_back(config.explain_by_names.front());
  }
  if (!config.exclude.empty()) {
    shuffled.exclude.push_back(config.exclude.front());
  }
  // `threads` never affects results and is dropped from keys entirely.
  shuffled.threads = config.threads + 1;
  const CanonicalQuery same = CanonicalizeQuery(dataset, shuffled);
  FUZZ_ASSERT(same.engine_key == keys.engine_key);
  FUZZ_ASSERT(same.query_key == keys.query_key);
  return 0;
}
