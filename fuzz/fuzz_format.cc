// Fuzz target: storage::format — frame validation and the ByteReader.
//
// Input shape: mode byte | bytes. Even modes run ValidateFramedBuffer
// over the bytes (the prologue every persisted format shares); odd modes
// drive a ByteReader through an op stream decoded from the input,
// asserting the reader's contract: accessors never read out of bounds,
// failure latches, and position/remaining stay consistent.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/fuzz_util.h"
#include "src/storage/format.h"
#include "src/storage/table_snapshot.h"

namespace {

using tsexplain::storage::ByteReader;
using tsexplain::storage::StorageStatus;

void DriveFrameValidation(const char* bytes, size_t n) {
  const char* payload = nullptr;
  size_t payload_size = 0;
  const StorageStatus status = tsexplain::storage::ValidateFramedBuffer(
      bytes, n, tsexplain::storage::kTableSnapshotMagic, "fuzz-input",
      &payload, &payload_size);
  if (status.ok()) {
    // An accepted frame must hand back a payload that sits entirely
    // inside the buffer, exactly the prologue past its start.
    FUZZ_ASSERT(payload ==
                bytes + tsexplain::storage::kFramePrologueBytes);
    FUZZ_ASSERT(payload_size ==
                n - tsexplain::storage::kFramePrologueBytes);
  } else {
    FUZZ_ASSERT(!status.message.empty());
  }
}

void DriveByteReader(tsexplain::fuzz::ByteSource& src) {
  const size_t nops = src.NextByte() % 32;
  std::vector<uint8_t> ops;
  for (size_t i = 0; i < nops; ++i) ops.push_back(src.NextByte());
  const std::string buffer = src.Rest();

  ByteReader r(buffer.data(), buffer.size());
  bool failed = false;
  for (const uint8_t op : ops) {
    const size_t before = r.position();
    bool ok = false;
    switch (op % 10) {
      case 0: {
        uint8_t v = 0;
        ok = r.ReadU8(&v);
        break;
      }
      case 1: {
        uint32_t v = 0;
        ok = r.ReadU32(&v);
        break;
      }
      case 2: {
        uint64_t v = 0;
        ok = r.ReadU64(&v);
        break;
      }
      case 3: {
        int32_t v = 0;
        ok = r.ReadI32(&v);
        break;
      }
      case 4: {
        double v = 0;
        ok = r.ReadF64(&v);
        break;
      }
      case 5: {
        std::string s;
        ok = r.ReadString(&s);
        if (ok) FUZZ_ASSERT(s.size() <= buffer.size());
        break;
      }
      case 6: {
        std::vector<int32_t> v;
        ok = r.ReadI32Array(&v, op / 10);
        if (ok) FUZZ_ASSERT(v.size() == op / 10);
        break;
      }
      case 7: {
        std::vector<double> v;
        ok = r.ReadF64Array(&v, op / 10);
        if (ok) FUZZ_ASSERT(v.size() == op / 10);
        break;
      }
      case 8:
        ok = r.AlignTo(8, op / 10);
        break;
      default:
        ok = r.Skip(op / 10);
        break;
    }
    // The reader contract: failure latches (no accessor succeeds after
    // one fails), a failed accessor reports failed(), and the cursor
    // never leaves the buffer or moves backwards.
    if (failed) FUZZ_ASSERT(!ok);
    if (!ok) {
      FUZZ_ASSERT(r.failed());
      failed = true;
    }
    FUZZ_ASSERT(r.position() <= buffer.size());
    FUZZ_ASSERT(r.position() >= before);
    FUZZ_ASSERT(r.remaining() == buffer.size() - r.position());
    FUZZ_ASSERT(r.AtEnd() == (r.remaining() == 0));
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  if (size == 0) return 0;
  tsexplain::fuzz::ByteSource src(data, size);
  const uint8_t mode = src.NextByte();
  if (mode % 2 == 0) {
    const std::string bytes = src.Rest();
    DriveFrameValidation(bytes.data(), bytes.size());
  } else {
    DriveByteReader(src);
  }
  return 0;
}
