// Fuzz target: storage/append_log + storage/session_log — the crash
// recovery surface. The input is treated as a log file and pushed through
// all three layers: raw record framing (ReadAppendLog), session decode
// (ReadSessionLog), and full recovery (RecoverStreamingSession) against a
// fixed base table with a validated config override — exactly how the
// service replays a log from a crashed process. Torn tails must truncate
// to a clean log that replays the same record prefix.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "fuzz/fuzz_util.h"
#include "src/pipeline/tsexplain.h"
#include "src/storage/append_log.h"
#include "src/storage/session_log.h"
#include "src/table/csv_reader.h"
#include "src/table/table.h"

namespace {

using tsexplain::Table;
using tsexplain::storage::AppendLogReadResult;
using tsexplain::storage::SessionLogContents;
using tsexplain::storage::StorageStatus;

const Table& BaseTable() {
  static const Table* table = [] {
    tsexplain::CsvOptions options;
    options.time_column = "time";
    options.measure_columns = {"value"};
    tsexplain::CsvResult result = tsexplain::ReadCsvFromString(
        tsexplain::fuzz::kSessionBaseCsv(), options);
    FUZZ_ASSERT(result.ok());
    return result.table.release();
  }();
  return *table;
}

// The validated config the service would pass as config_override: the
// logged header config is untrusted and must never reach the engine.
tsexplain::TSExplainConfig SafeConfig() {
  tsexplain::TSExplainConfig config;
  config.measure = "value";
  config.explain_by_names = {"region"};
  config.threads = 1;
  return config;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const tsexplain::fuzz::TempFile file(data, size, "slog");

  // Layer 1: record framing.
  const AppendLogReadResult log = tsexplain::storage::ReadAppendLog(file.path());
  if (!log.ok()) {
    FUZZ_ASSERT(!log.status.message.empty());
    FUZZ_ASSERT(log.records.empty());
  }

  // Layer 2: session decode (header + appends).
  SessionLogContents contents;
  const StorageStatus session_status =
      tsexplain::storage::ReadSessionLog(file.path(), &contents);
  if (session_status.ok()) {
    // A decoded session is the framing view minus the header record.
    FUZZ_ASSERT(log.ok());
    FUZZ_ASSERT(!log.records.empty());
    FUZZ_ASSERT(contents.appends.size() == log.records.size() - 1);
    FUZZ_ASSERT(contents.torn == log.torn);
  }

  // Layer 3: full recovery with the service's validated override.
  const tsexplain::TSExplainConfig safe = SafeConfig();
  const tsexplain::storage::SessionRecoveryResult recovered =
      tsexplain::storage::RecoverStreamingSession(BaseTable(), file.path(),
                                                  &safe);
  if (recovered.ok()) {
    FUZZ_ASSERT(recovered.status.ok());
  } else {
    FUZZ_ASSERT(!recovered.status.ok());
    FUZZ_ASSERT(!recovered.status.message.empty());
  }

  // Torn-tail contract: truncating at valid_bytes yields a clean log
  // holding exactly the records that replayed.
  if (log.ok() && log.torn) {
    FUZZ_ASSERT(log.valid_bytes <= size);
    FUZZ_ASSERT(
        tsexplain::storage::TruncateTornTail(file.path(), log.valid_bytes)
            .ok());
    const AppendLogReadResult clean =
        tsexplain::storage::ReadAppendLog(file.path());
    FUZZ_ASSERT(clean.ok());
    FUZZ_ASSERT(!clean.torn);
    FUZZ_ASSERT(clean.records.size() == log.records.size());
    for (size_t i = 0; i < clean.records.size(); ++i) {
      FUZZ_ASSERT(clean.records[i] == log.records[i]);
    }
  }
  return 0;
}
