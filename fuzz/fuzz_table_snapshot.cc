// Fuzz target: storage/table_snapshot — BOTH decode paths over the same
// bytes. Every input is opened through the owned reader
// (ReadTableSnapshot) and the zero-copy mmap open (OpenTableSnapshot);
// the two must agree exactly: same acceptance, same StorageErrorCode on
// rejection, and on acceptance the same fingerprint and a byte-identical
// re-encoding. Error-path divergence between the paths is a finding,
// not noise — the service treats them as interchangeable.

#include <cstddef>
#include <cstdint>
#include <string>

#include "fuzz/fuzz_util.h"
#include "src/storage/table_snapshot.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const tsexplain::fuzz::TempFile file(data, size, "tbl");

  const tsexplain::storage::TableSnapshotResult owned =
      tsexplain::storage::ReadTableSnapshot(file.path());
  const tsexplain::storage::TableSnapshotResult mapped =
      tsexplain::storage::OpenTableSnapshot(file.path());

  FUZZ_ASSERT(owned.ok() == mapped.ok());
  FUZZ_ASSERT(owned.status.code == mapped.status.code);
  if (!owned.ok()) {
    FUZZ_ASSERT(!owned.status.message.empty());
    FUZZ_ASSERT(!mapped.status.message.empty());
    return 0;
  }
  // Accepted: the two loads must describe the same table.
  FUZZ_ASSERT(owned.fingerprint == mapped.fingerprint);
  FUZZ_ASSERT(owned.table->num_rows() == mapped.table->num_rows());
  const std::string reencoded_owned =
      tsexplain::storage::EncodeTableSnapshotPayload(*owned.table);
  const std::string reencoded_mapped =
      tsexplain::storage::EncodeTableSnapshotPayload(*mapped.table);
  FUZZ_ASSERT(reencoded_owned == reencoded_mapped);
  // And the fingerprint in the result must match the content.
  FUZZ_ASSERT(tsexplain::storage::TableFingerprint(*owned.table) ==
              owned.fingerprint);
  return 0;
}
