// Shared helpers for the fuzz harnesses in fuzz/ (docs/FUZZING.md).
//
// Every harness exposes the libFuzzer entry point
//   extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);
// and is built two ways:
//   * TSEXPLAIN_FUZZ=ON (clang): linked against libFuzzer for
//     coverage-guided exploration under ASan+UBSan (tools/run_fuzzers.sh,
//     the fuzz-smoke CI job);
//   * default (any compiler): linked with fuzz/replay_driver.cc into a
//     fuzz_<target>_replay binary that replays the committed corpus under
//     ctest — corpus regression runs in tier-1.
//
// Harnesses cannot use gtest: a property violation is reported by
// trapping (FUZZ_ASSERT), which both libFuzzer and the replay driver turn
// into a hard failure with a reproducing input.

#ifndef TSEXPLAIN_FUZZ_FUZZ_UTIL_H_
#define TSEXPLAIN_FUZZ_FUZZ_UTIL_H_

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

// Property assertion for harness invariants (NOT for rejecting inputs —
// harnesses must accept arbitrary bytes). Prints the failed condition so
// a crash report names the violated property, then traps so the fuzzer
// saves the input as a crasher.
#define FUZZ_ASSERT(cond)                                                  \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "FUZZ_ASSERT failed at %s:%d: %s\n", __FILE__,  \
                   __LINE__, #cond);                                       \
      __builtin_trap();                                                    \
    }                                                                      \
  } while (0)

namespace tsexplain {
namespace fuzz {

/// Directory for harness scratch files ($TMPDIR or /tmp).
inline std::string TempDir() {
  const char* env = std::getenv("TMPDIR");
  return env && *env ? env : "/tmp";
}

/// A unique scratch path (pid + per-process counter); nothing is created.
inline std::string TempPath(const char* tag) {
  static unsigned long counter = 0;
  return TempDir() + "/tsx_fuzz_" + std::to_string(::getpid()) + "_" + tag +
         "_" + std::to_string(++counter);
}

/// Writes the fuzz input to a unique temp file and removes it on scope
/// exit — the bridge from byte-oriented fuzzing to path-oriented decode
/// APIs (snapshots, logs).
class TempFile {
 public:
  TempFile(const uint8_t* data, size_t size, const char* tag)
      : path_(TempPath(tag)) {
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    FUZZ_ASSERT(f != nullptr);
    if (size > 0) {
      FUZZ_ASSERT(std::fwrite(data, 1, size, f) == size);
    }
    std::fclose(f);
  }
  ~TempFile() { std::remove(path_.c_str()); }
  TempFile(const TempFile&) = delete;
  TempFile& operator=(const TempFile&) = delete;

  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Consumes the input front-to-back to derive structured choices
/// (structure-aware harnesses). Exhaustion yields zeros / empty strings —
/// never an out-of-bounds read.
class ByteSource {
 public:
  ByteSource(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool empty() const { return pos_ >= size_; }
  size_t remaining() const { return size_ - pos_; }

  uint8_t NextByte() { return pos_ < size_ ? data_[pos_++] : 0; }
  /// A value in [0, bound); 0 when bound == 0.
  uint32_t NextBelow(uint32_t bound) {
    if (bound == 0) return 0;
    uint32_t v = NextByte();
    v = (v << 8) | NextByte();
    return v % bound;
  }
  /// Up to `max_len` raw bytes as a string.
  std::string NextString(size_t max_len) {
    size_t len = NextByte();
    if (len > max_len) len = max_len;
    if (len > remaining()) len = remaining();
    std::string s(reinterpret_cast<const char*>(data_) + pos_, len);
    pos_ += len;
    return s;
  }
  /// The untouched tail (for harnesses that split "choices | payload").
  std::string Rest() {
    std::string s(reinterpret_cast<const char*>(data_) + pos_, remaining());
    pos_ = size_;
    return s;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// The fixed base dataset shared by the session-log harness and the seed
/// generator: session-log seeds are written against THIS table so its
/// fingerprint matches and coverage-guided mutation can reach the replay
/// path, not just the fingerprint fence.
inline const char* kSessionBaseCsv() {
  return
      "time,region,value\n"
      "d0,east,1\n"
      "d0,west,2\n"
      "d1,east,3\n"
      "d1,west,1\n"
      "d2,east,2\n"
      "d2,west,5\n";
}

}  // namespace fuzz
}  // namespace tsexplain

#endif  // TSEXPLAIN_FUZZ_FUZZ_UTIL_H_
