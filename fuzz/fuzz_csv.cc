// Fuzz target: table/csv_reader — the loader behind `register` with
// inline CSV or a csv_path, i.e. fully attacker-reachable over the wire.
// The input is parsed under two option sets (default comma / alternate
// delimiter); a successful parse must yield a structurally consistent
// table, a failed one a non-empty error.

#include <cstddef>
#include <cstdint>
#include <string>

#include "fuzz/fuzz_util.h"
#include "src/table/csv_reader.h"

namespace {

using tsexplain::CsvOptions;
using tsexplain::CsvResult;

void Drive(const std::string& text, const CsvOptions& options) {
  const CsvResult result = tsexplain::ReadCsvFromString(text, options);
  if (result.ok()) {
    FUZZ_ASSERT(result.error.empty());
    FUZZ_ASSERT(result.table->num_rows() == result.rows);
    // Rows cannot outnumber input lines: no allocation amplification.
    FUZZ_ASSERT(result.rows <= text.size() + 1);
  } else {
    FUZZ_ASSERT(!result.error.empty());
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);

  // The quote-aware splitter must accept any single line.
  const size_t eol = text.find('\n');
  tsexplain::SplitCsvLine(
      eol == std::string::npos ? text : text.substr(0, eol), ',');

  CsvOptions comma;
  comma.time_column = "time";
  comma.measure_columns = {"value"};
  Drive(text, comma);

  CsvOptions alt;
  alt.time_column = "t";
  alt.measure_columns = {"v", "w"};
  alt.delimiter = ';';
  alt.sort_time = false;
  Drive(text, alt);
  return 0;
}
