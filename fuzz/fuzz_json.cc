// Fuzz target: common/json — the parser every NDJSON request goes
// through. Arbitrary bytes must either parse or fail with a non-empty
// error; parsed documents are walked through every accessor (the walk is
// stack-safe because the parser rejects nesting beyond kMaxJsonDepth).

#include <cstddef>
#include <cstdint>
#include <string>

#include "fuzz/fuzz_util.h"
#include "src/common/json.h"

namespace {

using tsexplain::JsonValue;

size_t Walk(const JsonValue& v) {
  size_t nodes = 1;
  switch (v.type()) {
    case JsonValue::Type::kNull:
      FUZZ_ASSERT(v.IsNull());
      break;
    case JsonValue::Type::kBool:
      v.AsBool();
      break;
    case JsonValue::Type::kNumber:
      v.AsDouble();
      v.AsInt();  // must clamp to the fallback instead of UB-casting
      break;
    case JsonValue::Type::kString:
      FUZZ_ASSERT(v.AsString().size() < static_cast<size_t>(-1));
      break;
    case JsonValue::Type::kArray:
      for (const JsonValue& item : v.array()) nodes += Walk(item);
      break;
    case JsonValue::Type::kObject:
      for (const auto& member : v.members()) {
        const JsonValue* found = v.Find(member.first);
        FUZZ_ASSERT(found != nullptr);  // first occurrence wins, but finds
        nodes += Walk(member.second);
      }
      v.GetBool("op");
      v.GetInt("id");
      v.GetDouble("x");
      v.GetString("op");
      v.GetStringArray("explain_by");
      break;
  }
  return nodes;
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  const std::string text(reinterpret_cast<const char*>(data), size);
  JsonValue doc;
  std::string error;
  if (tsexplain::ParseJson(text, &doc, &error)) {
    FUZZ_ASSERT(error.empty());
    // A parsed document can hold at most one node per input byte (every
    // value consumes at least one character) — allocation is bounded by
    // the input, never amplified.
    FUZZ_ASSERT(Walk(doc) <= size + 1);
  } else {
    FUZZ_ASSERT(!error.empty());
  }
  return 0;
}
