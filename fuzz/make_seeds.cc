// Seed-corpus generator: writes the per-target seeds under
// fuzz/corpus/<target>/ (docs/FUZZING.md, "corpus layout"). Run from the
// repo root after changing a format:
//
//   ./build/fuzz_make_seeds fuzz/corpus
//
// Seeds are committed: they are both the fuzzers' starting coverage and
// the regression corpus the fuzz_*_replay ctest entries replay. Crashers
// found by fuzzing are added to the same directories BY HAND in the PR
// that fixes them (never deleted, never suppressed).
//
// Everything here is deterministic — regenerating must reproduce the
// committed bytes so corpus diffs stay reviewable.

#include <sys/stat.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "fuzz/fuzz_util.h"
#include "src/pipeline/tsexplain.h"
#include "src/storage/append_log.h"
#include "src/storage/cache_snapshot.h"
#include "src/storage/format.h"
#include "src/storage/session_log.h"
#include "src/storage/table_snapshot.h"
#include "src/table/csv_reader.h"

namespace {

using tsexplain::storage::ByteWriter;

std::string g_root;
int g_failures = 0;

void WriteSeed(const std::string& target, const std::string& name,
               const std::string& bytes) {
  const std::string dir = g_root + "/" + target;
  ::mkdir(dir.c_str(), 0755);
  const std::string path = dir + "/" + name;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f || std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    ++g_failures;
  }
  if (f) std::fclose(f);
}

// magic(8) | payload_len(u64) | payload_crc32(u32) | payload — the frame
// every storage file shares, assembled by hand so seeds can carry
// CRC-valid hostile payloads.
std::string Frame(const char* magic, const std::string& payload) {
  std::string framed(magic, 8);
  const uint64_t len = payload.size();
  framed.append(reinterpret_cast<const char*>(&len), sizeof(len));
  const uint32_t crc =
      tsexplain::storage::Crc32(payload.data(), payload.size());
  framed.append(reinterpret_cast<const char*>(&crc), sizeof(crc));
  framed.append(payload);
  return framed;
}

std::string ReadFileBytes(const std::string& path) {
  std::string bytes;
  if (!tsexplain::storage::ReadFileToString(path, &bytes).ok()) {
    std::fprintf(stderr, "cannot read back %s\n", path.c_str());
    ++g_failures;
  }
  return bytes;
}

std::unique_ptr<tsexplain::Table> BaseTable() {
  tsexplain::CsvOptions options;
  options.time_column = "time";
  options.measure_columns = {"value"};
  tsexplain::CsvResult result = tsexplain::ReadCsvFromString(
      tsexplain::fuzz::kSessionBaseCsv(), options);
  if (!result.ok()) {
    std::fprintf(stderr, "base table CSV failed: %s\n",
                 result.error.c_str());
    ++g_failures;
  }
  return std::move(result.table);
}

void MakeFormatSeeds() {
  const std::string valid =
      Frame(tsexplain::storage::kTableSnapshotMagic, "seed frame payload");
  // Mode byte 0x00 = frame validation, 0x01 = ByteReader op stream.
  WriteSeed("format", "frame_valid", std::string(1, '\0') + valid);
  std::string badmagic = valid;
  badmagic[3] ^= 0x40;
  WriteSeed("format", "frame_badmagic", std::string(1, '\0') + badmagic);
  WriteSeed("format", "frame_trunc",
            std::string(1, '\0') + valid.substr(0, 13));
  std::string badcrc = valid;
  badcrc[badcrc.size() - 3] ^= 0x01;
  WriteSeed("format", "frame_badcrc", std::string(1, '\0') + badcrc);
  std::string mismatch = valid;
  mismatch[8] ^= 0x07;  // declared length != actual
  WriteSeed("format", "frame_len_mismatch", std::string(1, '\0') + mismatch);

  std::string ops;
  ops.push_back('\x01');  // mode: reader ops
  ops.push_back(16);      // op count
  for (int i = 0; i < 16; ++i) ops.push_back(static_cast<char>(i * 13));
  ops.append("0123456789abcdefghijklmnopqrstuv0123456789abcdef");
  WriteSeed("format", "reader_ops", ops);
}

void MakeTableSnapshotSeeds() {
  std::unique_ptr<tsexplain::Table> table = BaseTable();
  const std::string tmp = tsexplain::fuzz::TempPath("seed_tbl");
  if (!tsexplain::storage::WriteTableSnapshot(*table, tmp).ok()) {
    std::fprintf(stderr, "WriteTableSnapshot failed\n");
    ++g_failures;
    return;
  }
  const std::string v2 = ReadFileBytes(tmp);
  std::remove(tmp.c_str());
  WriteSeed("table_snapshot", "v2_valid", v2);
  WriteSeed("table_snapshot", "v2_trunc_header",
            v2.substr(0, tsexplain::storage::kFramePrologueBytes - 3));
  WriteSeed("table_snapshot", "v2_trunc_payload",
            v2.substr(0, v2.size() - 9));
  std::string flipped = v2;
  flipped[v2.size() / 2] ^= 0x20;
  WriteSeed("table_snapshot", "v2_bitflip", flipped);

  // Handcrafted v1: no fingerprint field, column blocks aligned
  // payload-relative (phase 0). One dim, one measure, two rows.
  {
    ByteWriter w;
    w.WriteU32(1);  // version
    w.WriteString("day");
    w.WriteU32(1);  // ndims
    w.WriteString("region");
    w.WriteU32(1);  // nmeasures
    w.WriteString("sales");
    w.WriteU64(2);  // nrows
    w.WriteU64(2);  // nbuckets
    w.WriteString("d0");
    w.WriteString("d1");
    w.WriteU64(2);  // dictionary: 2 values
    w.WriteString("east");
    w.WriteString("west");
    w.AlignTo(8, 0);
    w.WriteI32(0);  // time column
    w.WriteI32(1);
    w.AlignTo(8, 0);
    w.WriteI32(0);  // region codes
    w.WriteI32(1);
    w.AlignTo(8, 0);
    w.WriteF64(1.5);  // sales
    w.WriteF64(-2.0);
    WriteSeed("table_snapshot", "v1_valid",
              Frame(tsexplain::storage::kTableSnapshotMagic, w.TakeBuffer()));
  }

  // CRC-valid frame around a hostile row count: the parse must reach the
  // count guards, not die at the checksum.
  {
    ByteWriter w;
    w.WriteU32(2);                    // version
    w.WriteU64(0);                    // fingerprint (unchecked)
    w.WriteString("t");
    w.WriteU32(0);                    // ndims
    w.WriteU32(0);                    // nmeasures
    w.WriteU64(1ull << 60);           // hostile nrows
    w.WriteU64(0);                    // nbuckets
    WriteSeed("table_snapshot", "v2_hostile_nrows",
              Frame(tsexplain::storage::kTableSnapshotMagic, w.TakeBuffer()));
  }
}

void MakeCacheSnapshotSeeds() {
  tsexplain::storage::CacheSnapshot snapshot;
  snapshot.datasets.push_back({"covid", 7, 0x1234567890abcdefull});
  snapshot.datasets.push_back({"stock", 9, 42});
  snapshot.entries.push_back(
      {"q/covid/7/sum(cases)", "{\"ok\":true,\"segments\":[]}"});
  snapshot.entries.push_back({"q/stock/9/avg(price)", "{\"ok\":true}"});
  const std::string tmp = tsexplain::fuzz::TempPath("seed_cch");
  if (!tsexplain::storage::WriteCacheSnapshot(snapshot, tmp).ok()) {
    std::fprintf(stderr, "WriteCacheSnapshot failed\n");
    ++g_failures;
    return;
  }
  const std::string valid = ReadFileBytes(tmp);
  std::remove(tmp.c_str());
  WriteSeed("cache_snapshot", "valid", valid);
  WriteSeed("cache_snapshot", "trunc", valid.substr(0, valid.size() - 7));
  std::string flipped = valid;
  flipped[valid.size() / 3] ^= 0x08;
  WriteSeed("cache_snapshot", "bitflip", flipped);
}

void MakeSessionLogSeeds() {
  std::unique_ptr<tsexplain::Table> base = BaseTable();
  const uint64_t fingerprint = tsexplain::storage::TableFingerprint(*base);
  tsexplain::TSExplainConfig config;
  config.measure = "value";
  config.explain_by_names = {"region"};

  // A real session: header + two appends against the harness base table
  // (matching fingerprint, so replay actually runs).
  const std::string tmp = tsexplain::fuzz::TempPath("seed_slog");
  {
    tsexplain::storage::SessionLogWriter writer;
    if (!writer.Open(tmp, "ds", fingerprint, config).ok()) {
      std::fprintf(stderr, "SessionLogWriter::Open failed\n");
      ++g_failures;
      return;
    }
    writer.LogAppend("d3", {{{"east"}, {4.0}}, {{"west"}, {1.0}}});
    writer.LogAppend("d4", {{{"east"}, {2.5}}});
    writer.Close();
  }
  const std::string valid = ReadFileBytes(tmp);
  WriteSeed("session_log", "valid_session", valid);
  WriteSeed("session_log", "torn_tail",
            valid + std::string("\x40\x00\x00\x00garbage", 11));
  WriteSeed("session_log", "header_only",
            valid.substr(0, valid.size() / 2));
  std::string wrong_fp = valid;
  std::remove(tmp.c_str());

  // Wrong fingerprint: decodes fine, recovery fences it.
  {
    tsexplain::storage::SessionLogWriter writer;
    if (writer.Open(tmp, "ds", fingerprint ^ 1, config).ok()) {
      writer.LogAppend("d3", {{{"east"}, {4.0}}});
      writer.Close();
      WriteSeed("session_log", "wrong_fingerprint", ReadFileBytes(tmp));
      std::remove(tmp.c_str());
    }
  }

  // CRC-valid garbage record: framing accepts it, session decode must
  // reject it structurally.
  {
    tsexplain::storage::AppendLogWriter writer;
    if (writer.Open(tmp).ok()) {
      writer.Append("not a session record at all");
      writer.Close();
      WriteSeed("session_log", "garbage_record", ReadFileBytes(tmp));
      std::remove(tmp.c_str());
    }
  }
}

void MakeJsonSeeds() {
  WriteSeed("json", "request",
            "{\"op\":\"explain\",\"id\":7,\"dataset\":\"covid\","
            "\"measure\":\"cases\",\"explain_by\":[\"state\",\"county\"],"
            "\"k\":0,\"max_k\":20,\"filter\":true,\"filter_ratio\":0.001}");
  WriteSeed("json", "scalars", "[null,true,false,0,-1,3.5,1e300,\"x\"]");
  WriteSeed("json", "escapes",
            "{\"s\":\"a\\\"b\\\\c\\/d\\b\\f\\n\\r\\t\\u0041\\uD83D\\uDE00\"}");
  WriteSeed("json", "nested",
            "{\"a\":{\"b\":[{\"c\":[1,2,{\"d\":null}]}]},\"e\":[[[[0]]]]}");
  WriteSeed("json", "numbers",
            "[0,-0,0.5,123456789,1e-300,-1.5E+10,2147483648,0.0001]");
}

void MakeProtocolSeeds() {
  WriteSeed("protocol", "session",
            "{\"op\":\"register\",\"id\":1,\"name\":\"t\",\"csv\":"
            "\"time,region,value\\nd0,east,1\\nd1,west,2\\n\","
            "\"time_column\":\"time\",\"measures\":[\"value\"]}\n"
            "{\"op\":\"explain\",\"id\":2,\"dataset\":\"ds\","
            "\"measure\":\"value\",\"explain_by\":[\"region\"]}\n"
            "{\"op\":\"stats\",\"id\":3}\n"
            "{\"op\":\"metrics\",\"id\":4}\n");
  WriteSeed("protocol", "streaming",
            "{\"op\":\"open_session\",\"id\":1,\"dataset\":\"ds\","
            "\"measure\":\"value\",\"explain_by\":[\"region\"]}\n"
            "{\"op\":\"append\",\"id\":2,\"session\":1,\"label\":\"d3\","
            "\"rows\":[{\"dims\":[\"east\"],\"measures\":[2]}]}\n"
            "{\"op\":\"explain_session\",\"id\":3,\"session\":1}\n"
            "{\"op\":\"close_session\",\"id\":4,\"session\":1}\n");
  WriteSeed("protocol", "cache_roundtrip",
            "{\"op\":\"save_cache\",\"id\":1,\"path\":\"warm.bin\"}\n"
            "{\"op\":\"load_cache\",\"id\":2,\"path\":\"warm.bin\"}\n"
            "{\"op\":\"load_cache\",\"id\":3,\"path\":\"missing.bin\"}\n");
  WriteSeed("protocol", "hostile_lines",
            "{\"op\":\"explain\"\n"
            "not json at all\n"
            "{\"op\":\"drop_dataset\",\"name\":\"ds\",\"name\":\"twice\"}\n"
            "{\"op\":\"explain\",\"dataset\":\"\\u0000\\uFFFD\"}\n");
  // One assembled-mode line (0x01 prefix) seeding the structure-aware
  // path with some op/field soup bytes.
  std::string soup;
  soup.push_back('\x01');
  for (int i = 0; i < 48; ++i) soup.push_back(static_cast<char>(i * 7));
  soup.push_back('\n');
  WriteSeed("protocol", "assembled_soup", soup);
}

void MakeQueryKeySeeds() {
  // Deterministic pseudo-random blobs (LCG) — the harness decodes them
  // into configs; no structure to preserve.
  uint32_t state = 0x2bad'f00d;
  for (int file = 0; file < 3; ++file) {
    std::string bytes;
    for (int i = 0; i < 48 + file * 40; ++i) {
      state = state * 1664525u + 1013904223u;
      bytes.push_back(static_cast<char>(state >> 24));
    }
    WriteSeed("query_key", "blob" + std::to_string(file), bytes);
  }
  // A crafted one: dataset/name fields full of separator characters.
  std::string crafted;
  crafted.push_back(10);
  crafted.append("ds|/:=\"\\\n\t");
  crafted.push_back(2);
  for (int i = 0; i < 64; ++i) crafted.push_back(static_cast<char>(i));
  WriteSeed("query_key", "separators", crafted);
}

void MakeCsvSeeds() {
  WriteSeed("csv", "simple",
            "time,region,value\nd0,east,1\nd0,west,2\nd1,east,3\n");
  WriteSeed("csv", "quoted",
            "time,region,value\r\nd0,\"a,b\",1\r\nd1,\"say \"\"hi\"\"\",2\r\n");
  WriteSeed("csv", "alt_delim", "t;x;v;w\nd0;p;1;2\nd1;q;3;4\n");
  WriteSeed("csv", "ragged",
            "time,region,value\nd0,east\nd0,east,1,extra\n,,\nd1,west,nan\n");
}

}  // namespace

int main(int argc, char** argv) {
  g_root = argc > 1 ? argv[1] : "fuzz/corpus";
  ::mkdir(g_root.c_str(), 0755);
  MakeFormatSeeds();
  MakeTableSnapshotSeeds();
  MakeCacheSnapshotSeeds();
  MakeSessionLogSeeds();
  MakeJsonSeeds();
  MakeProtocolSeeds();
  MakeQueryKeySeeds();
  MakeCsvSeeds();
  if (g_failures != 0) {
    std::fprintf(stderr, "make_seeds: %d failure(s)\n", g_failures);
    return 1;
  }
  std::printf("seed corpora written under %s\n", g_root.c_str());
  return 0;
}
