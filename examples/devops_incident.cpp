// DevOps incident triage example (the intro's fourth domain): explain a
// fleet-wide error-rate series by service, region, and deployment version,
// with multi-threaded module (c) and a Vega-Lite chart export.
//
//   $ ./devops_incident [> chart.vl.json]
//
// Expected story: TSExplain isolates the canary window and names
// (service=checkout & region=us-east & version=v2), then the cascading
// (service=payments) incident, then recovery.

#include <cstdio>

#include "src/datagen/devops_sim.h"
#include "src/pipeline/report.h"
#include "src/pipeline/tsexplain.h"

using namespace tsexplain;

int main(int argc, char** argv) {
  const auto table = MakeDevopsTable();
  std::fprintf(stderr, "fleet telemetry: %zu rows over %zu minutes\n",
               table->num_rows(), table->num_time_buckets());

  TSExplainConfig config;
  config.measure = "errors";
  config.explain_by_names = {"service", "region", "version"};
  config.max_order = 3;
  config.smooth_window = 5;  // per-minute counters are noisy
  config.use_filter = true;
  config.use_guess_verify = true;
  config.use_sketch = true;
  config.threads = 4;

  TSExplain engine(*table, config);
  const TSExplainResult result = engine.Run();
  std::fprintf(stderr, "%s",
               RenderTextReport(engine, result).c_str());

  // Emit a Vega-Lite chart of the evolving explanations on stdout when
  // asked (pipe into a .vl.json file and open in any Vega viewer).
  if (argc > 1) {
    std::printf("%s\n", RenderVegaLiteSpec(engine, result).c_str());
  }
  (void)argv;
  return 0;
}
