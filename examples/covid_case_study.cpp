// Covid case study (the paper's running example, Figures 1/2/11/12): load
// the simulated 58-state relation, explain both the total and the daily
// confirmed-cases series, and render Figure-2-style output: segments, the
// top-3 contributing states per segment, and their per-segment trendlines.

#include <cstdio>
#include <string>
#include <vector>

#include "src/datagen/covid_sim.h"
#include "src/pipeline/tsexplain.h"
#include "src/table/group_by.h"

namespace {

using namespace tsexplain;

void PrintTrendline(const TimeSeries& slice, int begin, int end,
                    const std::string& name) {
  // Compact per-segment trendline: first, middle, last values.
  const int mid = (begin + end) / 2;
  std::printf("      %-12s %10.0f -> %10.0f -> %10.0f\n", name.c_str(),
              slice.values[static_cast<size_t>(begin)],
              slice.values[static_cast<size_t>(mid)],
              slice.values[static_cast<size_t>(end)]);
}

void Explain(const Table& table, const std::string& measure,
             int smooth_window) {
  TSExplainConfig config;
  config.measure = measure;
  config.explain_by_names = {"state"};
  config.smooth_window = smooth_window;
  config.use_filter = true;
  config.use_guess_verify = true;
  config.use_sketch = true;

  TSExplain engine(table, config);
  const TSExplainResult result = engine.Run();

  std::printf("\n=== %s: K* = %d ===\n", measure.c_str(), result.chosen_k);
  for (const SegmentExplanation& seg : result.segments) {
    std::printf("  %s .. %s\n", seg.begin_label.c_str(),
                seg.end_label.c_str());
    for (const auto& item : seg.top) {
      std::printf("    top: %s\n", item.ToString().c_str());
      // Figure 2 attaches each explanation's own trendline to the segment.
      const ExplId id = item.id;
      PrintTrendline(engine.cube().SliceSeries(id), seg.begin, seg.end,
                     item.description);
    }
  }
}

}  // namespace

int main() {
  const auto table = MakeCovidTable();
  std::printf("Relation: %zu rows, %zu states, %zu days\n",
              table->num_rows(), table->dictionary(0).size(),
              table->num_time_buckets());
  Explain(*table, "total_confirmed_cases", /*smooth_window=*/1);
  Explain(*table, "daily_confirmed_cases", /*smooth_window=*/7);
  return 0;
}
