// Quickstart: build a tiny relation, ask TSExplain "what drives the ups and
// downs of my KPI over time", and print the evolving explanations.
//
//   $ ./quickstart
//
// The relation simulates a product-sales table with two explain-by
// attributes (region, product). Mid-series the growth driver hands over
// from region=NA/product=widget to region=EU/product=gadget -- TSExplain
// should segment at the hand-over and name the contributors on each side.

#include <cstdio>

#include "src/pipeline/tsexplain.h"

using tsexplain::AggregateFunction;
using tsexplain::Schema;
using tsexplain::SegmentExplanation;
using tsexplain::Table;
using tsexplain::TimeId;
using tsexplain::TSExplain;
using tsexplain::TSExplainConfig;
using tsexplain::TSExplainResult;

int main() {
  // 1. Build the relation: one row per (day, region, product).
  Table table(Schema("day", {"region", "product"}, {"sales"}));
  const int n = 40;
  for (int day = 0; day < n; ++day) {
    table.AddTimeBucket("d" + std::to_string(day));
  }
  for (int day = 0; day < n; ++day) {
    const double phase1 = day < 20 ? day : 20.0;          // grows, then flat
    const double phase2 = day < 20 ? 0.0 : (day - 20.0);  // flat, then grows
    // NA widgets boom while NA gadgets slowly bleed -- the right story is
    // the conjunction "region=NA & product=widget", not all of NA.
    table.AppendRow(day, {"NA", "widget"}, {100.0 + 8.0 * phase1});
    table.AppendRow(day, {"NA", "gadget"}, {90.0 - 2.0 * phase1});
    table.AppendRow(day, {"EU", "widget"}, {40.0});
    table.AppendRow(day, {"EU", "gadget"}, {80.0 + 10.0 * phase2});
  }

  // 2. Configure the query: SELECT day, SUM(sales) GROUP BY day,
  //    explained by {region, product}, top-3 per segment, auto K.
  TSExplainConfig config;
  config.aggregate = AggregateFunction::kSum;
  config.measure = "sales";
  config.explain_by_names = {"region", "product"};
  config.max_order = 2;  // allow conjunctions like region=EU & product=gadget
  config.m = 3;

  // 3. Run.
  TSExplain engine(table, config);
  const TSExplainResult result = engine.Run();

  // 4. Read the evolving explanations.
  std::printf("TSExplain chose K = %d segments (total variance %.3f)\n\n",
              result.chosen_k, result.segmentation.total_variance);
  for (const SegmentExplanation& seg : result.segments) {
    std::printf("segment %s .. %s is driven by:\n", seg.begin_label.c_str(),
                seg.end_label.c_str());
    for (const auto& item : seg.top) {
      std::printf("    %-38s gamma=%8.1f\n", item.ToString().c_str(),
                  item.gamma);
    }
  }
  std::printf(
      "\n(expected: the first segment is driven by region=NA & "
      "product=widget rising -- with NA gadgets bleeding (-) -- and the "
      "second by region=EU & product=gadget)\n");
  return 0;
}
