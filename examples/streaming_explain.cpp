// Streaming example (paper section 8, "Real-time Time Series"): seed the
// engine with the first 70 days of a synthetic relation, then stream the
// remaining days one bucket at a time, refreshing the evolving explanations
// after each arrival. Incremental refreshes restrict the cut candidates to
// the previous cuts plus the new points, so they are far cheaper than the
// initial run.

#include <cstdio>

#include "src/common/timer.h"
#include "src/datagen/synthetic.h"
#include "src/pipeline/streaming.h"

using namespace tsexplain;

namespace {

std::vector<StreamRow> BucketRows(const Table& source, TimeId t) {
  std::vector<StreamRow> rows;
  for (size_t r = 0; r < source.num_rows(); ++r) {
    if (source.time(r) != t) continue;
    StreamRow row;
    row.dims = {source.dictionary(0).ToString(source.dim(r, 0))};
    row.measures = {source.measure(r, 0)};
    rows.push_back(std::move(row));
  }
  return rows;
}

void PrintCuts(const TSExplainResult& result) {
  std::printf("K=%d cuts:", result.segmentation.num_segments());
  for (int cut : result.segmentation.cuts) std::printf(" %d", cut);
  if (!result.segments.empty()) {
    const auto& last = result.segments.back();
    std::printf("   latest segment driven by: %s",
                last.top.empty() ? "-" : last.top[0].ToString().c_str());
  }
  std::printf("\n");
}

}  // namespace

int main() {
  // Full 100-day dataset; the engine first sees only a 70-day prefix.
  SyntheticConfig sconfig;
  sconfig.length = 100;
  sconfig.snr_db = 40.0;
  sconfig.seed = 7;
  sconfig.num_interior_cuts = 4;
  const SyntheticDataset full = GenerateSynthetic(sconfig);

  Table prefix(full.table->schema());
  for (int t = 0; t < 70; ++t) {
    prefix.AddTimeBucket(full.table->time_labels()[static_cast<size_t>(t)]);
  }
  for (size_t r = 0; r < full.table->num_rows(); ++r) {
    if (full.table->time(r) < 70) {
      prefix.AppendRow(
          full.table->time(r),
          {full.table->dictionary(0).ToString(full.table->dim(r, 0))},
          {full.table->measure(r, 0)});
    }
  }

  TSExplainConfig config;
  config.measure = "value";
  config.explain_by_names = {"category"};
  config.max_order = 1;

  StreamingTSExplain engine(prefix, config);
  Timer first_timer;
  TSExplainResult result = engine.Explain();
  std::printf("initial run over 70 days: %.1f ms\n  ",
              first_timer.ElapsedMs());
  PrintCuts(result);

  for (int t = 70; t < 100; ++t) {
    engine.AppendBucket(full.table->time_labels()[static_cast<size_t>(t)],
                        BucketRows(*full.table, static_cast<TimeId>(t)));
    if ((t - 69) % 10 == 0) {  // refresh every 10 arrivals
      Timer refresh_timer;
      result = engine.Explain();
      std::printf("refresh at day %d: %.1f ms\n  ", t,
                  refresh_timer.ElapsedMs());
      PrintCuts(result);
    }
  }
  std::printf("\nground-truth cuts:");
  for (int cut : full.ground_truth_cuts) std::printf(" %d", cut);
  std::printf("\n");
  return 0;
}
