// Metric playground: compare the eight within-segment variance designs
// (section 4.2.2) and the three diff metrics on one synthetic dataset, and
// decompose a seasonal series before explaining it (section 8).

#include <cstdio>

#include "src/datagen/synthetic.h"
#include "src/eval/metric_comparison.h"
#include "src/eval/segmentation_distance.h"
#include "src/pipeline/tsexplain.h"
#include "src/ts/decompose.h"

using namespace tsexplain;

int main() {
  SyntheticConfig sconfig;
  sconfig.length = 100;
  sconfig.snr_db = 30.0;
  sconfig.seed = 12;
  sconfig.num_interior_cuts = 4;
  const SyntheticDataset ds = GenerateSynthetic(sconfig);
  std::printf("dataset: n=100, SNR=30dB, ground-truth K=%d\n",
              ds.ground_truth_k());

  // --- 1. Which variance metric recovers the ground truth best? ---------
  std::printf("\nsegmentation accuracy per variance metric (oracle K):\n");
  for (VarianceMetric metric : kAllVarianceMetrics) {
    TSExplainConfig config;
    config.measure = "value";
    config.explain_by_names = {"category"};
    config.max_order = 1;
    config.variance_metric = metric;
    config.fixed_k = ds.ground_truth_k();
    TSExplain engine(*ds.table, config);
    const TSExplainResult result = engine.Run();
    std::printf("    %-9s distance-to-ground-truth = %5.2f%%\n",
                VarianceMetricName(metric),
                DistancePercent(result.segmentation.cuts,
                                ds.ground_truth_cuts, 100));
  }

  // --- 2. Ground-truth rank evaluation (the Figure 6 methodology) -------
  {
    const auto registry = ExplanationRegistry::Build(*ds.table, {0}, 1);
    const ExplanationCube cube(*ds.table, registry, AggregateFunction::kSum,
                               0);
    SegmentExplainer::Options options;
    options.m = 3;
    SegmentExplainer explainer(cube, registry, options);
    const MetricComparisonResult cmp = CompareVarianceMetrics(
        explainer, ds.ground_truth_cuts, 2000, 99, /*threads=*/4);
    std::printf("\nground-truth rank among 2000 random schemes:\n");
    for (size_t i = 0; i < 8; ++i) {
      std::printf("    %-9s gt-rank %5d  (metric rank %.0f)\n",
                  VarianceMetricName(kAllVarianceMetrics[i]),
                  cmp.per_metric[i].rank, cmp.metric_rank[i]);
    }
  }

  // --- 3. Diff metrics beyond absolute-change ---------------------------
  std::printf("\ntop explanation for [0, 99] under each diff metric:\n");
  for (DiffMetricKind metric :
       {DiffMetricKind::kAbsoluteChange, DiffMetricKind::kRelativeChange,
        DiffMetricKind::kRiskRatio}) {
    TSExplainConfig config;
    config.measure = "value";
    config.explain_by_names = {"category"};
    config.max_order = 1;
    config.diff_metric = metric;
    TSExplain engine(*ds.table, config);
    const auto items = engine.ExplainSegment(0, 99);
    std::printf("    %-16s -> %s (gamma %.3f)\n", DiffMetricName(metric),
                items.empty() ? "-" : items[0].description.c_str(),
                items.empty() ? 0.0 : items[0].gamma);
  }

  // --- 4. Seasonal decomposition before explaining (section 8) ----------
  {
    std::vector<double> seasonal(100);
    for (int t = 0; t < 100; ++t) {
      seasonal[static_cast<size_t>(t)] =
          ds.noisy[0][static_cast<size_t>(t)] +
          40.0 * ((t % 7 < 2) ? 1.0 : -0.4);  // weekly pattern
    }
    const Decomposition d = DecomposeAdditive(seasonal, 7);
    double seasonal_amplitude = 0.0;
    for (int p = 0; p < 7; ++p) {
      seasonal_amplitude = std::max(seasonal_amplitude,
                                    std::abs(d.seasonal[static_cast<size_t>(p)]));
    }
    std::printf("\nseasonal pre-processing: weekly amplitude %.1f removed; "
                "explain the trend component separately.\n",
                seasonal_amplitude);
  }
  return 0;
}
