// Liquor drill-down example: multi-attribute conjunction explanations
// (order up to 3) over a transaction-style relation, demonstrating the
// support filter, guess-and-verify, and sketching on an epsilon-heavy
// workload -- plus an interactive-style "explain this period" query using
// the two-relations diff building block directly.

#include <cstdio>

#include "src/datagen/liquor_sim.h"
#include "src/pipeline/tsexplain.h"

using namespace tsexplain;

int main() {
  const auto table = MakeLiquorTable();
  std::printf("Liquor relation: %zu rows over %zu business days\n",
              table->num_rows(), table->num_time_buckets());

  TSExplainConfig config;
  config.measure = "bottles_sold";
  config.explain_by_names = {"BV", "P", "CN", "VN"};
  config.max_order = 3;  // conjunctions like BV=1750 & P=6
  config.smooth_window = 5;
  config.use_filter = true;        // drop <0.1%-support slices
  config.use_guess_verify = true;  // O1
  config.use_sketch = true;        // O2

  TSExplain engine(*table, config);
  const TSExplainResult result = engine.Run();

  std::printf("candidate explanations: %zu (%zu after support filter)\n",
              result.epsilon, result.filtered_epsilon);
  std::printf("chosen K* = %d; pipeline latency %.0f ms "
              "(precompute %.0f / CA %.0f / segmentation %.0f)\n\n",
              result.chosen_k, result.timing.TotalMs(),
              result.timing.precompute_ms, result.timing.cascading_ms,
              result.timing.segmentation_ms);

  for (const SegmentExplanation& seg : result.segments) {
    std::printf("%s .. %s\n", seg.begin_label.c_str(), seg.end_label.c_str());
    for (const auto& item : seg.top) {
      std::printf("    %s\n", item.ToString().c_str());
    }
  }

  // Ad-hoc "why" query on a user-chosen window (two-relations diff on the
  // endpoints, section 3.1): the March closure.
  std::printf("\nad-hoc: what changed between day 45 (3/6) and day 62 "
              "(3/31)?\n");
  for (const auto& item : engine.ExplainSegment(45, 62)) {
    std::printf("    %-30s gamma=%9.0f\n", item.ToString().c_str(),
                item.gamma);
  }
  return 0;
}
